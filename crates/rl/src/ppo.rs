//! Proximal policy optimisation (Schulman et al. 2017) with the clipped
//! surrogate objective, on the same Gaussian-softmax portfolio policy as
//! [`crate::a2c::A2c`].

use crate::config::{RlConfig, TrainReport};
use crate::returns::lambda_targets;
use crate::state::{DefaultState, StateBuilder};
use cit_market::{AssetPanel, DecisionContext, EnvConfig, PortfolioEnv, Strategy};
use cit_nn::{Activation, Adam, Ctx, GaussianHead, Mlp, ParamStore};
use cit_tensor::{Graph, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PPO-specific knobs on top of [`RlConfig`].
#[derive(Debug, Clone, Copy)]
pub struct PpoConfig {
    /// Shared RL hyper-parameters.
    pub base: RlConfig,
    /// Clipping radius ε.
    pub clip: f32,
    /// Optimisation epochs per collected rollout.
    pub epochs: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            base: RlConfig::default(),
            clip: 0.2,
            epochs: 4,
        }
    }
}

/// A PPO agent.
pub struct Ppo<S: StateBuilder> {
    cfg: PpoConfig,
    state: S,
    num_assets: usize,
    store: ParamStore,
    policy: Mlp,
    value: Mlp,
    head: GaussianHead,
    rng: StdRng,
}

impl Ppo<DefaultState> {
    /// Creates a PPO agent with the default state.
    pub fn new(panel: &AssetPanel, cfg: PpoConfig) -> Self {
        let m = panel.num_assets();
        let state = DefaultState;
        let dim = state.dim(m);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let policy = Mlp::new(
            &mut store,
            &mut rng,
            "policy",
            &[dim, cfg.base.hidden, cfg.base.hidden, m],
            Activation::Tanh,
        );
        let value = Mlp::new(
            &mut store,
            &mut rng,
            "value",
            &[dim, cfg.base.hidden, 1],
            Activation::Tanh,
        );
        let head = GaussianHead::new(&mut store, "policy", m, cfg.base.init_log_std);
        Ppo {
            cfg,
            state,
            num_assets: m,
            store,
            policy,
            value,
            head,
            rng,
        }
    }
}

/// `clamp(x, lo, hi)` from ReLU primitives: `lo + relu(x−lo) − relu(x−hi)`.
fn clamp_var(g: &mut Graph, x: Var, lo: f32, hi: f32) -> Var {
    let a = g.add_scalar(x, -lo);
    let ra = g.relu(a);
    let b = g.add_scalar(x, -hi);
    let rb = g.relu(b);
    let lo_plus = g.add_scalar(ra, lo);
    g.sub(lo_plus, rb)
}

/// `min(a, b) = b − relu(b − a)` from ReLU primitives.
fn min_var(g: &mut Graph, a: Var, b: Var) -> Var {
    let d = g.sub(b, a);
    let r = g.relu(d);
    g.sub(b, r)
}

impl<S: StateBuilder> Ppo<S> {
    fn policy_mean(&self, s: &[f64]) -> Tensor {
        let mut ctx = Ctx::new(&self.store);
        let input = ctx.input(Tensor::vector(
            &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
        ));
        let out = self.policy.forward_vec(&mut ctx, input);
        ctx.g.value(out).clone()
    }

    fn value_of(&self, s: &[f64]) -> f64 {
        let mut ctx = Ctx::new(&self.store);
        let input = ctx.input(Tensor::vector(
            &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
        ));
        let out = self.value.forward_vec(&mut ctx, input);
        ctx.g.value(out).data()[0] as f64
    }

    /// Number of assets the agent was sized for.
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// Deterministic evaluation action.
    pub fn act(&self, panel: &AssetPanel, t: usize, prev: &[f64]) -> Vec<f64> {
        let s = self.state.build(panel, t, prev);
        let mean = self.policy_mean(&s);
        self.head
            .mean_action(&mean)
            .data()
            .iter()
            .map(|&v| v as f64)
            .collect()
    }

    /// Trains on the panel's training period.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        let base = self.cfg.base;
        let env_cfg = EnvConfig {
            window: base.window,
            transaction_cost: base.transaction_cost,
        };
        let start = base.min_start().max(self.state.min_history());
        let end = panel.test_start();
        assert!(start + 2 < end, "training period too short");
        let mut env = PortfolioEnv::new(panel, env_cfg, start, end);
        let mut opt = Adam::new(base.lr, base.weight_decay);
        let mut steps = 0usize;
        let mut update_rewards = Vec::new();

        while steps < base.total_steps {
            // ---- Collect ----
            let mut states = Vec::new();
            let mut latents: Vec<Tensor> = Vec::new();
            let mut logp_old = Vec::new();
            let mut rewards = Vec::new();
            for _ in 0..base.rollout {
                let s = self.state.build(panel, env.current_day(), env.weights());
                let mean = self.policy_mean(&s);
                let sample = self.head.sample(&self.store, &mean, &mut self.rng);
                let action: Vec<f64> = sample.action.data().iter().map(|&v| v as f64).collect();
                let res = env.step(&action);
                states.push(s);
                logp_old.push(sample.log_prob);
                latents.push(sample.latent);
                rewards.push(res.reward);
                steps += 1;
                if res.done {
                    env.reset();
                    break;
                }
            }
            if states.is_empty() {
                continue;
            }
            let mut values: Vec<f64> = states.iter().map(|s| self.value_of(s)).collect();
            let s_next = self.state.build(panel, env.current_day(), env.weights());
            values.push(self.value_of(&s_next));
            let targets = lambda_targets(&rewards, &values, base.gamma, base.lambda, base.nstep);
            let mut advs: Vec<f64> = targets.iter().zip(&values).map(|(y, v)| y - v).collect();
            crate::a2c::normalize_advantages(&mut advs);

            // ---- Optimise for several epochs ----
            for _ in 0..self.cfg.epochs {
                let l = states.len() as f32;
                let mut ctx = Ctx::new(&self.store);
                let mut total: Option<Var> = None;
                for (i, s) in states.iter().enumerate() {
                    let input = ctx.input(Tensor::vector(
                        &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
                    ));
                    let mean = self.policy.forward_vec(&mut ctx, input);
                    let logp = self.head.log_prob(&mut ctx, mean, &latents[i]);
                    let shifted = ctx.g.add_scalar(logp, -logp_old[i]);
                    let ratio = ctx.g.exp(shifted);
                    let adv = advs[i] as f32;
                    let surr1 = ctx.g.scale(ratio, adv);
                    let clipped =
                        clamp_var(&mut ctx.g, ratio, 1.0 - self.cfg.clip, 1.0 + self.cfg.clip);
                    let surr2 = ctx.g.scale(clipped, adv);
                    let surr = min_var(&mut ctx.g, surr1, surr2);
                    let actor = ctx.g.scale(surr, -1.0 / l);
                    let v = self.value.forward_vec(&mut ctx, input);
                    let y = ctx.input(Tensor::vector(&[targets[i] as f32]));
                    let d = ctx.g.sub(v, y);
                    let sq = ctx.g.mul(d, d);
                    let critic = ctx.g.scale(sq, 0.5 / l);
                    let critic_s = ctx.g.sum_all(critic);
                    let actor_s = ctx.g.sum_all(actor);
                    let term = ctx.g.add(actor_s, critic_s);
                    total = Some(match total {
                        Some(acc) => ctx.g.add(acc, term),
                        None => term,
                    });
                }
                let loss = total.expect("non-empty rollout");
                let grads = ctx.backward(loss);
                self.store.apply_grads(grads);
                self.store.clip_grad_norm(base.grad_clip);
                opt.step(&mut self.store);
            }
            update_rewards.push(rewards.iter().sum::<f64>() / rewards.len() as f64);
        }
        TrainReport {
            update_rewards,
            steps,
        }
    }
}

impl<S: StateBuilder> Strategy for Ppo<S> {
    fn name(&self) -> String {
        "PPO".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t, ctx.prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    #[test]
    fn clamp_and_min_primitives() {
        let mut g = Graph::new();
        let x = g.param_leaf(Tensor::vector(&[0.5, 1.5, 1.05]));
        let c = clamp_var(&mut g, x, 0.8, 1.2);
        let cv = g.value(c).data().to_vec();
        assert!((cv[0] - 0.8).abs() < 1e-6);
        assert!((cv[1] - 1.2).abs() < 1e-6);
        assert!((cv[2] - 1.05).abs() < 1e-6);

        let a = g.param_leaf(Tensor::vector(&[1.0, -2.0]));
        let b = g.param_leaf(Tensor::vector(&[0.5, 3.0]));
        let mn = min_var(&mut g, a, b);
        assert_eq!(g.value(mn).data(), &[0.5, -2.0]);
    }

    #[test]
    fn ppo_trains_and_acts() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate();
        let cfg = PpoConfig {
            base: RlConfig::smoke(5),
            ..Default::default()
        };
        let mut agent = Ppo::new(&p, cfg);
        let rep = agent.train(&p);
        assert!(rep.steps >= cfg.base.total_steps);
        let a = agent.act(&p, 150, &[1.0 / 3.0; 3]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn ppo_learns_dominant_asset() {
        let days = 400;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.01 } else { 0.997 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.002, c * 0.998, c]);
            }
        }
        let p = AssetPanel::new("rigged", days, 3, data, 350);
        let mut cfg = PpoConfig {
            base: RlConfig::smoke(6),
            ..Default::default()
        };
        cfg.base.total_steps = 4_000;
        cfg.base.lr = 1e-3;
        cfg.base.gamma = 0.5;
        let mut agent = Ppo::new(&p, cfg);
        agent.train(&p);
        let a = agent.act(&p, 360, &[1.0 / 3.0; 3]);
        assert!(a[0] > 0.45, "PPO should overweight the winner, got {a:?}");
    }
}
