//! Advantage actor-critic (A2C) with a Gaussian-softmax policy — the
//! single-policy baseline of the paper's Table III and the degenerate case
//! of the cross-insight trader (Table IV, row "A2C").

use crate::config::{RlConfig, TrainReport};
use crate::returns::lambda_targets;
use crate::state::{DefaultState, StateBuilder};
use cit_market::{AssetPanel, DecisionContext, EnvConfig, PortfolioEnv, Strategy};
use cit_nn::{Activation, Adam, Ctx, GaussianHead, Mlp, ParamStore};
use cit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An A2C agent over an arbitrary [`StateBuilder`].
pub struct A2c<S: StateBuilder> {
    name: String,
    cfg: RlConfig,
    state: S,
    num_assets: usize,
    store: ParamStore,
    policy: Mlp,
    value: Mlp,
    head: GaussianHead,
    rng: StdRng,
}

impl A2c<DefaultState> {
    /// Creates an A2C agent with the default technical-feature state.
    pub fn new(panel: &AssetPanel, cfg: RlConfig) -> Self {
        Self::with_state(panel, cfg, DefaultState, "A2C")
    }
}

impl<S: StateBuilder> A2c<S> {
    /// Creates an agent with a custom state builder and display name.
    pub fn with_state(panel: &AssetPanel, cfg: RlConfig, state: S, name: &str) -> Self {
        let m = panel.num_assets();
        let dim = state.dim(m);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let policy = Mlp::new(
            &mut store,
            &mut rng,
            "policy",
            &[dim, cfg.hidden, cfg.hidden, m],
            Activation::Tanh,
        );
        let value = Mlp::new(
            &mut store,
            &mut rng,
            "value",
            &[dim, cfg.hidden, 1],
            Activation::Tanh,
        );
        let head = GaussianHead::new(&mut store, "policy", m, cfg.init_log_std);
        A2c {
            name: name.to_string(),
            cfg,
            state,
            num_assets: m,
            store,
            policy,
            value,
            head,
            rng,
        }
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_elements()
    }

    fn policy_mean(&self, s: &[f64]) -> Tensor {
        let mut ctx = Ctx::new(&self.store);
        let input = ctx.input(Tensor::vector(
            &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
        ));
        let out = self.policy.forward_vec(&mut ctx, input);
        ctx.g.value(out).clone()
    }

    fn value_of(&self, s: &[f64]) -> f64 {
        let mut ctx = Ctx::new(&self.store);
        let input = ctx.input(Tensor::vector(
            &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
        ));
        let out = self.value.forward_vec(&mut ctx, input);
        ctx.g.value(out).data()[0] as f64
    }

    /// Deterministic evaluation action: `softmax(μ(s))`.
    pub fn act(&self, panel: &AssetPanel, t: usize, prev: &[f64]) -> Vec<f64> {
        let s = self.state.build(panel, t, prev);
        let mean = self.policy_mean(&s);
        self.head
            .mean_action(&mean)
            .data()
            .iter()
            .map(|&v| v as f64)
            .collect()
    }

    /// Trains on the panel's training period and returns diagnostics.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        let env_cfg = EnvConfig {
            window: self.cfg.window,
            transaction_cost: self.cfg.transaction_cost,
        };
        let start = self.cfg.min_start().max(self.state.min_history());
        let end = panel.test_start();
        assert!(
            start + 2 < end,
            "training period too short for look-back requirements"
        );
        let mut env = PortfolioEnv::new(panel, env_cfg, start, end);
        let mut opt = Adam::new(self.cfg.lr, self.cfg.weight_decay);
        let mut steps = 0usize;
        let mut update_rewards = Vec::new();

        while steps < self.cfg.total_steps {
            // ---- Rollout ----
            let mut states: Vec<Vec<f64>> = Vec::with_capacity(self.cfg.rollout);
            let mut latents: Vec<Tensor> = Vec::with_capacity(self.cfg.rollout);
            let mut rewards: Vec<f64> = Vec::with_capacity(self.cfg.rollout);
            let mut truncated = false;
            for _ in 0..self.cfg.rollout {
                let s = self.state.build(panel, env.current_day(), env.weights());
                let mean = self.policy_mean(&s);
                let sample = self.head.sample(&self.store, &mean, &mut self.rng);
                let action: Vec<f64> = sample.action.data().iter().map(|&v| v as f64).collect();
                let res = env.step(&action);
                states.push(s);
                latents.push(sample.latent);
                rewards.push(res.reward);
                steps += 1;
                if res.done {
                    env.reset();
                    truncated = true;
                    break;
                }
            }
            if states.is_empty() {
                continue;
            }

            // ---- Targets ----
            let mut values: Vec<f64> = states.iter().map(|s| self.value_of(s)).collect();
            // Episode ends are time-limit truncations (the data ran out),
            // not true terminals, so always bootstrap from the next state —
            // post-reset when the boundary was hit.
            let _ = truncated;
            let s_next = self.state.build(panel, env.current_day(), env.weights());
            values.push(self.value_of(&s_next));
            let targets = lambda_targets(
                &rewards,
                &values,
                self.cfg.gamma,
                self.cfg.lambda,
                self.cfg.nstep,
            );
            let mut advs: Vec<f64> = targets.iter().zip(&values).map(|(y, v)| y - v).collect();
            normalize_advantages(&mut advs);

            // ---- Losses ----
            let l = states.len() as f32;
            let mut ctx = Ctx::new(&self.store);
            let mut total: Option<cit_tensor::Var> = None;
            for (i, s) in states.iter().enumerate() {
                let input = ctx.input(Tensor::vector(
                    &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
                ));
                // Actor term: -logπ(u|s) · Â
                let mean = self.policy.forward_vec(&mut ctx, input);
                let logp = self.head.log_prob(&mut ctx, mean, &latents[i]);
                let actor = ctx.g.scale(logp, -(advs[i] as f32) / l);
                // Critic term: (y - V(s))²
                let v = self.value.forward_vec(&mut ctx, input);
                let y = ctx.input(Tensor::vector(&[targets[i] as f32]));
                let d = ctx.g.sub(v, y);
                let sq = ctx.g.mul(d, d);
                let critic = ctx.g.scale(sq, 0.5 / l);
                let critic_s = ctx.g.sum_all(critic);
                let term = ctx.g.add(actor, critic_s);
                total = Some(match total {
                    Some(acc) => ctx.g.add(acc, term),
                    None => term,
                });
            }
            let loss = total.expect("non-empty rollout");
            let grads = ctx.backward(loss);
            self.store.apply_grads(grads);
            // Direct entropy-bonus gradient on log_std.
            self.apply_entropy_bonus();
            self.store.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&mut self.store);
            update_rewards.push(rewards.iter().sum::<f64>() / rewards.len() as f64);
        }
        TrainReport {
            update_rewards,
            steps,
        }
    }

    fn apply_entropy_bonus(&mut self) {
        if self.cfg.entropy_coef == 0.0 {
            return;
        }
        // Gaussian entropy is Σ log σ + const, so maximising it adds a
        // constant −β gradient to each log_std component.
        let id = self
            .store
            .ids()
            .find(|&pid| self.store.name(pid).ends_with(".log_std"))
            .expect("log_std registered");
        let g = Tensor::full(&[self.num_assets], -self.cfg.entropy_coef);
        self.store.accumulate_grad(id, &g);
    }
}

/// Normalises advantages to zero mean / unit std in place (no-op for
/// fewer than two elements).
pub fn normalize_advantages(v: &mut [f64]) {
    if v.len() < 2 {
        return;
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-8);
    for x in v.iter_mut() {
        *x = (*x - mean) / std;
    }
}

impl<S: StateBuilder> Strategy for A2c<S> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t, ctx.prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn actions_are_simplex() {
        let p = panel();
        let agent = A2c::new(&p, RlConfig::smoke(1));
        let a = agent.act(&p, 100, &[1.0 / 3.0; 3]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn training_runs_and_keeps_params_finite() {
        let p = panel();
        let mut agent = A2c::new(&p, RlConfig::smoke(2));
        let report = agent.train(&p);
        assert!(report.steps >= 300);
        assert!(!report.update_rewards.is_empty());
        let a = agent.act(&p, 150, &[1.0 / 3.0; 3]);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn learns_to_prefer_dominant_asset() {
        // Asset 0 grows 1% daily with mild noise; others shrink. After
        // training, the deterministic policy should clearly overweight it.
        let days = 400;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.01 } else { 0.997 };
                let wiggle = 1.0 + 0.002 * ((t * (i + 2)) as f64).sin();
                let c = 100.0 * g.powi(t as i32) * wiggle;
                data.extend_from_slice(&[c, c * 1.002, c * 0.998, c]);
            }
        }
        let p = AssetPanel::new("rigged", days, 3, data, 350);
        let mut cfg = RlConfig::smoke(3);
        cfg.total_steps = 6_000;
        cfg.lr = 1e-3;
        // Price transitions are exogenous, so short-horizon credit
        // assignment is exact and a small γ learns much faster here.
        cfg.gamma = 0.5;
        let mut agent = A2c::new(&p, cfg);
        agent.train(&p);
        let a = agent.act(&p, 360, &[1.0 / 3.0; 3]);
        assert!(
            a[0] > 0.45,
            "policy should overweight the dominant asset, got {a:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = panel();
        let mut a1 = A2c::new(&p, RlConfig::smoke(7));
        let mut a2 = A2c::new(&p, RlConfig::smoke(7));
        a1.train(&p);
        a2.train(&p);
        assert_eq!(
            a1.act(&p, 150, &[1.0 / 3.0; 3]),
            a2.act(&p, 150, &[1.0 / 3.0; 3])
        );
    }
}
