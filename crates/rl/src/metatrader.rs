//! MetaTrader-lite (Niu, Li & Li, CIKM 2022) — the paper's closest
//! related work (§II-B): learn a *set* of diversified base policies, then
//! a meta-policy that routes capital to the base policy best suited to the
//! current market state.
//!
//! This lite variant diversifies base A2C policies by seed and look-back
//! window, and the meta step selects per day among them with a
//! recent-performance score (an exponentially-weighted bandit over the
//! base policies' realised returns) — capturing MetaTrader's
//! policy-integration idea without its imitation-learning stage. Contrast
//! with the cross-insight trader, which blends *horizon-specific* policies
//! through a learned fusion network instead of picking one.

use crate::a2c::A2c;
use crate::config::{RlConfig, TrainReport};
use crate::state::DefaultState;
use cit_market::{AssetPanel, DecisionContext, Strategy};

/// MetaTrader-lite configuration.
#[derive(Debug, Clone, Copy)]
pub struct MetaTraderConfig {
    /// Shared RL hyper-parameters for the base policies.
    pub base: RlConfig,
    /// Number of diversified base policies.
    pub num_policies: usize,
    /// Exponential decay of the performance score (per day).
    pub score_decay: f64,
}

impl Default for MetaTraderConfig {
    fn default() -> Self {
        MetaTraderConfig {
            base: RlConfig::default(),
            num_policies: 3,
            score_decay: 0.9,
        }
    }
}

/// The MetaTrader-lite agent.
pub struct MetaTrader {
    cfg: MetaTraderConfig,
    policies: Vec<A2c<DefaultState>>,
    /// Exponentially-weighted realised-return score per base policy.
    scores: Vec<f64>,
    /// Day of the last score update (so scores only update once per day).
    last_scored_day: Option<usize>,
}

impl MetaTrader {
    /// Builds `num_policies` diversified base agents (different seeds and
    /// look-back windows).
    pub fn new(panel: &AssetPanel, cfg: MetaTraderConfig) -> Self {
        assert!(cfg.num_policies >= 1, "need at least one base policy");
        let policies = (0..cfg.num_policies)
            .map(|k| {
                let mut base = cfg.base;
                base.seed = cfg.base.seed.wrapping_add(1000 * k as u64 + 1);
                // Diversify horizons: alternate look-back windows.
                base.window = (cfg.base.window / (k + 1)).max(8);
                A2c::with_state(panel, base, DefaultState, &format!("base{k}"))
            })
            .collect();
        MetaTrader {
            scores: vec![0.0; cfg.num_policies],
            cfg,
            policies,
            last_scored_day: None,
        }
    }

    /// Trains every base policy.
    pub fn train(&mut self, panel: &AssetPanel) -> Vec<TrainReport> {
        self.policies.iter_mut().map(|p| p.train(panel)).collect()
    }

    /// The index of the currently preferred base policy.
    pub fn leader(&self) -> usize {
        self.scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Current per-policy scores (diagnostic).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    fn update_scores(&mut self, panel: &AssetPanel, t: usize, prev: &[f64]) {
        // Score each base policy by the return its action would have
        // realised yesterday (t−1 → t), exponentially discounted.
        if t == 0 {
            return;
        }
        if self.last_scored_day == Some(t) {
            return;
        }
        self.last_scored_day = Some(t);
        let rel = panel.price_relatives(t);
        for (k, policy) in self.policies.iter().enumerate() {
            let a = policy.act(panel, t - 1, prev);
            let growth: f64 = a.iter().zip(&rel).map(|(w, r)| w * r).sum();
            self.scores[k] = self.cfg.score_decay * self.scores[k]
                + (1.0 - self.cfg.score_decay) * (growth - 1.0);
        }
    }
}

impl Strategy for MetaTrader {
    fn name(&self) -> String {
        "MetaTrader".to_string()
    }

    fn reset(&mut self, _m: usize) {
        self.scores.iter_mut().for_each(|s| *s = 0.0);
        self.last_scored_day = None;
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.update_scores(ctx.panel, ctx.t, ctx.prev_weights);
        let leader = self.leader();
        self.policies[leader].act(ctx.panel, ctx.t, ctx.prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_test_period, EnvConfig, SynthConfig};

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate()
    }

    fn smoke_cfg(seed: u64) -> MetaTraderConfig {
        MetaTraderConfig {
            base: RlConfig {
                total_steps: 120,
                window: 16,
                ..RlConfig::smoke(seed)
            },
            num_policies: 3,
            score_decay: 0.9,
        }
    }

    #[test]
    fn trains_all_base_policies() {
        let p = panel();
        let mut mt = MetaTrader::new(&p, smoke_cfg(1));
        let reports = mt.train(&p);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.steps >= 120));
    }

    #[test]
    fn backtest_is_valid_and_scores_move() {
        let p = panel();
        let mut mt = MetaTrader::new(&p, smoke_cfg(2));
        mt.train(&p);
        let res = run_test_period(
            &p,
            EnvConfig {
                window: 16,
                transaction_cost: 1e-3,
            },
            &mut mt,
        );
        assert!(res.wealth.iter().all(|w| *w > 0.0));
        assert!(
            mt.scores().iter().any(|s| s.abs() > 0.0),
            "scores should update during the backtest"
        );
    }

    #[test]
    fn leader_tracks_best_scorer() {
        let p = panel();
        let mut mt = MetaTrader::new(&p, smoke_cfg(3));
        mt.scores = vec![-0.1, 0.3, 0.0];
        assert_eq!(mt.leader(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let p = panel();
        let mut mt = MetaTrader::new(&p, smoke_cfg(4));
        mt.scores = vec![1.0, 2.0, 3.0];
        mt.last_scored_day = Some(42);
        Strategy::reset(&mut mt, 3);
        assert!(mt.scores.iter().all(|s| *s == 0.0));
        assert_eq!(mt.last_scored_day, None);
    }

    #[test]
    fn base_policies_are_diversified() {
        let p = panel();
        let mt = MetaTrader::new(&p, smoke_cfg(5));
        // Different seeds/windows ⇒ different actions on the same state.
        let a = mt.policies[0].act(&p, 150, &[1.0 / 3.0; 3]);
        let b = mt.policies[1].act(&p, 150, &[1.0 / 3.0; 3]);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-9, "base policies should differ: {a:?} vs {b:?}");
    }
}
