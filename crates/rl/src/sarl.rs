//! SARL-lite (Ye et al., AAAI 2020): state-augmented reinforcement
//! learning. The original augments the RL state with an asset-movement
//! prediction learned from auxiliary data (news/prices); this lite variant
//! trains a shared logistic-regression movement predictor on the training
//! period and appends its up-probabilities to the A2C state.

use crate::a2c::A2c;
use crate::config::{RlConfig, TrainReport};
use crate::features::{asset_features, state_dim, state_vector, FEAT_DIM, FEAT_LOOKBACK};
use crate::state::StateBuilder;
use cit_market::{AssetPanel, DecisionContext, Strategy};

/// A logistic-regression movement predictor shared across assets.
#[derive(Debug, Clone)]
pub struct MovementPredictor {
    weights: [f64; FEAT_DIM],
    bias: f64,
}

impl MovementPredictor {
    /// Trains by SGD on (features at `t` → close up at `t+1`) pairs over
    /// the panel's training period.
    pub fn train(panel: &AssetPanel, epochs: usize, lr: f64) -> Self {
        let mut w = [0.0f64; FEAT_DIM];
        let mut b = 0.0f64;
        let start = FEAT_LOOKBACK;
        let end = panel.test_start() - 1;
        assert!(start < end, "training period too short for the predictor");
        for _ in 0..epochs {
            for t in start..end {
                for i in 0..panel.num_assets() {
                    let f = asset_features(panel, t, i);
                    let label = if panel.close(t + 1, i) > panel.close(t, i) {
                        1.0
                    } else {
                        0.0
                    };
                    let z: f64 = w.iter().zip(f.iter()).map(|(a, b)| a * b).sum::<f64>() + b;
                    let p = 1.0 / (1.0 + (-z).exp());
                    let err = p - label;
                    for (wk, fk) in w.iter_mut().zip(f.iter()) {
                        *wk -= lr * err * fk;
                    }
                    b -= lr * err;
                }
            }
        }
        MovementPredictor {
            weights: w,
            bias: b,
        }
    }

    /// Probability that asset `i` closes up tomorrow.
    pub fn predict(&self, panel: &AssetPanel, t: usize, i: usize) -> f64 {
        let f = asset_features(panel, t, i);
        let z: f64 = self
            .weights
            .iter()
            .zip(f.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// In-sample directional accuracy over the training period.
    pub fn train_accuracy(&self, panel: &AssetPanel) -> f64 {
        let start = FEAT_LOOKBACK;
        let end = panel.test_start() - 1;
        let mut correct = 0usize;
        let mut total = 0usize;
        for t in start..end {
            for i in 0..panel.num_assets() {
                let up = panel.close(t + 1, i) > panel.close(t, i);
                let pred = self.predict(panel, t, i) > 0.5;
                correct += usize::from(up == pred);
                total += 1;
            }
        }
        correct as f64 / total as f64
    }
}

/// State builder appending centred movement predictions to the default
/// feature state.
#[derive(Clone)]
pub struct SarlState {
    predictor: MovementPredictor,
}

impl StateBuilder for SarlState {
    fn dim(&self, m: usize) -> usize {
        state_dim(m) + m
    }

    fn build(&self, panel: &AssetPanel, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        let mut s = state_vector(panel, t, prev_weights);
        for i in 0..panel.num_assets() {
            s.push(self.predictor.predict(panel, t, i) - 0.5);
        }
        s
    }
}

/// The SARL-lite agent: A2C over the augmented state.
pub struct Sarl {
    inner: A2c<SarlState>,
}

impl Sarl {
    /// Trains the movement predictor, then wires up the augmented A2C.
    pub fn new(panel: &AssetPanel, cfg: RlConfig) -> Self {
        let predictor = MovementPredictor::train(panel, 2, 0.05);
        let inner = A2c::with_state(panel, cfg, SarlState { predictor }, "SARL");
        Sarl { inner }
    }

    /// Trains the RL component.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        self.inner.train(panel)
    }

    /// Deterministic evaluation action.
    pub fn act(&self, panel: &AssetPanel, t: usize, prev: &[f64]) -> Vec<f64> {
        self.inner.act(panel, t, prev)
    }
}

impl Strategy for Sarl {
    fn name(&self) -> String {
        "SARL".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t, ctx.prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{AssetPanel, SynthConfig};

    #[test]
    fn predictor_beats_chance_on_momentum_market() {
        // Persistent trends make direction linearly predictable from
        // momentum features.
        let days = 300;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..2 {
                let g: f64 = if i == 0 { 1.01 } else { 0.992 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = AssetPanel::new("trend", days, 2, data, 250);
        let pred = MovementPredictor::train(&p, 3, 0.05);
        let acc = pred.train_accuracy(&p);
        assert!(
            acc > 0.9,
            "accuracy {acc} should be high on a deterministic market"
        );
    }

    #[test]
    fn predictions_lie_in_unit_interval() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 200,
            test_start: 150,
            ..Default::default()
        }
        .generate();
        let pred = MovementPredictor::train(&p, 1, 0.05);
        for t in [30, 80, 120] {
            for i in 0..3 {
                let pr = pred.predict(&p, t, i);
                assert!((0.0..=1.0).contains(&pr));
            }
        }
    }

    #[test]
    fn sarl_state_is_longer_than_default() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 200,
            test_start: 150,
            ..Default::default()
        }
        .generate();
        let pred = MovementPredictor::train(&p, 1, 0.05);
        let s = SarlState { predictor: pred };
        assert_eq!(s.dim(3), state_dim(3) + 3);
        let v = s.build(&p, 50, &[1.0 / 3.0; 3]);
        assert_eq!(v.len(), s.dim(3));
    }

    #[test]
    fn sarl_trains_and_acts() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate();
        let mut agent = Sarl::new(&p, RlConfig::smoke(31));
        let rep = agent.train(&p);
        assert!(rep.steps >= 300);
        let a = agent.act(&p, 150, &[1.0 / 3.0; 3]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
    }
}
