//! Deep deterministic policy gradient (Lillicrap et al. 2016) adapted to
//! the portfolio simplex: a deterministic softmax actor, a Q(s,a) critic,
//! replay buffer, target networks with Polyak averaging, and Gaussian
//! exploration noise added to the actor's pre-softmax scores.

use crate::config::{RlConfig, TrainReport};
use crate::state::{DefaultState, StateBuilder};
use cit_market::{AssetPanel, DecisionContext, EnvConfig, PortfolioEnv, Strategy};
use cit_nn::{Activation, Adam, Ctx, Mlp, ParamId, ParamStore};
use cit_tensor::{rand_util, softmax_last_tensor, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// DDPG-specific knobs on top of [`RlConfig`].
#[derive(Debug, Clone, Copy)]
pub struct DdpgConfig {
    /// Shared RL hyper-parameters.
    pub base: RlConfig,
    /// Replay-buffer capacity.
    pub buffer: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Polyak coefficient τ for target updates.
    pub tau: f32,
    /// Std of exploration noise on pre-softmax scores.
    pub explore_std: f64,
    /// Environment steps before learning starts.
    pub warmup: usize,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            base: RlConfig::default(),
            buffer: 4096,
            batch: 32,
            tau: 0.01,
            explore_std: 0.3,
            warmup: 128,
        }
    }
}

struct Transition {
    state: Vec<f64>,
    action: Vec<f64>,
    reward: f64,
    next_state: Vec<f64>,
}

/// A DDPG agent.
pub struct Ddpg<S: StateBuilder> {
    cfg: DdpgConfig,
    state: S,
    num_assets: usize,
    store: ParamStore,
    target: ParamStore,
    actor: Mlp,
    critic: Mlp,
    actor_ids: HashSet<ParamId>,
    rng: StdRng,
    buffer: Vec<Transition>,
    buffer_next: usize,
}

impl Ddpg<DefaultState> {
    /// Creates a DDPG agent with the default state.
    pub fn new(panel: &AssetPanel, cfg: DdpgConfig) -> Self {
        let m = panel.num_assets();
        let state = DefaultState;
        let dim = state.dim(m);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let actor = Mlp::new(
            &mut store,
            &mut rng,
            "actor",
            &[dim, cfg.base.hidden, cfg.base.hidden, m],
            Activation::Tanh,
        );
        let actor_ids: HashSet<ParamId> = store.ids().collect();
        let critic = Mlp::new(
            &mut store,
            &mut rng,
            "critic",
            &[dim + m, cfg.base.hidden, cfg.base.hidden, 1],
            Activation::Tanh,
        );
        let target = store.clone();
        Ddpg {
            cfg,
            state,
            num_assets: m,
            store,
            target,
            actor,
            critic,
            actor_ids,
            rng,
            buffer: Vec::new(),
            buffer_next: 0,
        }
    }
}

impl<S: StateBuilder> Ddpg<S> {
    fn scores(&self, store: &ParamStore, s: &[f64]) -> Tensor {
        let mut ctx = Ctx::new(store);
        let input = ctx.input(Tensor::vector(
            &s.iter().map(|v| *v as f32).collect::<Vec<_>>(),
        ));
        let out = self.actor.forward_vec(&mut ctx, input);
        ctx.g.value(out).clone()
    }

    fn q_value(&self, store: &ParamStore, s: &[f64], a: &[f64]) -> f64 {
        let mut ctx = Ctx::new(store);
        let mut joint: Vec<f32> = s.iter().map(|v| *v as f32).collect();
        joint.extend(a.iter().map(|v| *v as f32));
        let input = ctx.input(Tensor::vector(&joint));
        let out = self.critic.forward_vec(&mut ctx, input);
        ctx.g.value(out).data()[0] as f64
    }

    /// Number of assets the agent was sized for.
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// Deterministic evaluation action `softmax(actor(s))`.
    pub fn act(&self, panel: &AssetPanel, t: usize, prev: &[f64]) -> Vec<f64> {
        let s = self.state.build(panel, t, prev);
        let scores = self.scores(&self.store, &s);
        softmax_last_tensor(&scores)
            .data()
            .iter()
            .map(|&v| v as f64)
            .collect()
    }

    fn push_transition(&mut self, tr: Transition) {
        if self.buffer.len() < self.cfg.buffer {
            self.buffer.push(tr);
        } else {
            self.buffer[self.buffer_next] = tr;
            self.buffer_next = (self.buffer_next + 1) % self.cfg.buffer;
        }
    }

    /// Trains on the panel's training period.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        let base = self.cfg.base;
        let env_cfg = EnvConfig {
            window: base.window,
            transaction_cost: base.transaction_cost,
        };
        let start = base.min_start().max(self.state.min_history());
        let end = panel.test_start();
        assert!(start + 2 < end, "training period too short");
        let mut env = PortfolioEnv::new(panel, env_cfg, start, end);
        let mut opt = Adam::new(base.lr, base.weight_decay);
        let mut steps = 0usize;
        let mut update_rewards = Vec::new();
        let mut window_rewards = Vec::new();

        while steps < base.total_steps {
            let s = self.state.build(panel, env.current_day(), env.weights());
            let mut scores = self.scores(&self.store, &s);
            for v in scores.data_mut() {
                *v += rand_util::normal(&mut self.rng) as f32 * self.cfg.explore_std as f32;
            }
            let action: Vec<f64> = softmax_last_tensor(&scores)
                .data()
                .iter()
                .map(|&v| v as f64)
                .collect();
            let res = env.step(&action);
            if res.done {
                env.reset();
            }
            let s_next = self.state.build(panel, env.current_day(), env.weights());
            window_rewards.push(res.reward);
            self.push_transition(Transition {
                state: s,
                action,
                reward: res.reward,
                next_state: s_next,
            });
            steps += 1;

            if self.buffer.len() >= self.cfg.warmup {
                self.learn_batch(&mut opt);
            }
            if steps.is_multiple_of(base.rollout) {
                update_rewards
                    .push(window_rewards.iter().sum::<f64>() / window_rewards.len() as f64);
                window_rewards.clear();
            }
        }
        TrainReport {
            update_rewards,
            steps,
        }
    }

    fn learn_batch(&mut self, opt: &mut Adam) {
        let base = self.cfg.base;
        let n = self.cfg.batch.min(self.buffer.len());
        let idxs: Vec<usize> = (0..n)
            .map(|_| self.rng.random_range(0..self.buffer.len()))
            .collect();

        // ---- Critic targets from the target networks (plain numbers) ----
        let mut ys = Vec::with_capacity(n);
        for &i in &idxs {
            let tr = &self.buffer[i];
            let next_scores = self.scores(&self.target, &tr.next_state);
            let next_action: Vec<f64> = softmax_last_tensor(&next_scores)
                .data()
                .iter()
                .map(|&v| v as f64)
                .collect();
            let q_next = self.q_value(&self.target, &tr.next_state, &next_action);
            ys.push(tr.reward + base.gamma * q_next);
        }

        // ---- Critic update ----
        let mut ctx = Ctx::new(&self.store);
        let mut total: Option<cit_tensor::Var> = None;
        for (k, &i) in idxs.iter().enumerate() {
            let tr = &self.buffer[i];
            let mut joint: Vec<f32> = tr.state.iter().map(|v| *v as f32).collect();
            joint.extend(tr.action.iter().map(|v| *v as f32));
            let input = ctx.input(Tensor::vector(&joint));
            let q = self.critic.forward_vec(&mut ctx, input);
            let y = ctx.input(Tensor::vector(&[ys[k] as f32]));
            let d = ctx.g.sub(q, y);
            let sq = ctx.g.mul(d, d);
            let term = ctx.g.sum_all(sq);
            total = Some(match total {
                Some(acc) => ctx.g.add(acc, term),
                None => term,
            });
        }
        let loss = total.expect("non-empty batch");
        let loss = ctx.g.scale(loss, 1.0 / n as f32);
        let grads = ctx.backward(loss);
        // Critic gradients only.
        let critic_grads: Vec<_> = grads
            .into_iter()
            .filter(|(id, _)| !self.actor_ids.contains(id))
            .collect();
        self.store.apply_grads(critic_grads);
        self.store.clip_grad_norm(base.grad_clip);
        opt.step(&mut self.store);

        // ---- Actor update: maximise Q(s, softmax(actor(s))) ----
        let mut ctx = Ctx::new(&self.store);
        let mut total: Option<cit_tensor::Var> = None;
        for &i in &idxs {
            let tr = &self.buffer[i];
            let sv: Vec<f32> = tr.state.iter().map(|v| *v as f32).collect();
            let input = ctx.input(Tensor::vector(&sv));
            let scores = self.actor.forward_vec(&mut ctx, input);
            let a = ctx.g.softmax_last(scores);
            let state_in = ctx.input(Tensor::vector(&sv));
            let joint = ctx.g.concat(&[state_in, a]);
            let q = self.critic.forward_vec(&mut ctx, joint);
            let neg = ctx.g.scale(q, -1.0);
            let term = ctx.g.sum_all(neg);
            total = Some(match total {
                Some(acc) => ctx.g.add(acc, term),
                None => term,
            });
        }
        let loss = total.expect("non-empty batch");
        let loss = ctx.g.scale(loss, 1.0 / n as f32);
        let grads = ctx.backward(loss);
        // Actor gradients only — the critic stays fixed in this step.
        let actor_grads: Vec<_> = grads
            .into_iter()
            .filter(|(id, _)| self.actor_ids.contains(id))
            .collect();
        self.store.apply_grads(actor_grads);
        self.store.clip_grad_norm(base.grad_clip);
        opt.step(&mut self.store);

        // ---- Target update ----
        self.target.soft_update_from(&self.store, self.cfg.tau);
    }
}

impl<S: StateBuilder> Strategy for Ddpg<S> {
    fn name(&self) -> String {
        "DDPG".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t, ctx.prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    #[test]
    fn ddpg_trains_and_acts() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate();
        let mut cfg = DdpgConfig {
            warmup: 64,
            ..Default::default()
        };
        cfg.base = RlConfig::smoke(11);
        cfg.base.total_steps = 400;
        let mut agent = Ddpg::new(&p, cfg);
        let rep = agent.train(&p);
        assert!(rep.steps >= 400);
        let a = agent.act(&p, 150, &[1.0 / 3.0; 3]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ddpg_learns_dominant_asset() {
        let days = 360;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.012 } else { 0.996 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.002, c * 0.998, c]);
            }
        }
        let p = AssetPanel::new("rigged", days, 3, data, 320);
        let mut cfg = DdpgConfig {
            base: RlConfig::smoke(12),
            ..Default::default()
        };
        cfg.base.total_steps = 3_000;
        cfg.base.lr = 1e-3;
        cfg.base.gamma = 0.5;
        let mut agent = Ddpg::new(&p, cfg);
        agent.train(&p);
        let a = agent.act(&p, 330, &[1.0 / 3.0; 3]);
        assert!(a[0] > 0.45, "DDPG should overweight the winner, got {a:?}");
    }

    #[test]
    fn replay_buffer_wraps() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 260,
            test_start: 200,
            ..Default::default()
        }
        .generate();
        // warmup 1000 never triggers learning; we only test the buffer.
        let mut cfg = DdpgConfig {
            buffer: 64,
            warmup: 1000,
            ..Default::default()
        };
        cfg.base = RlConfig::smoke(13);
        cfg.base.total_steps = 300;
        let mut agent = Ddpg::new(&p, cfg);
        agent.train(&p);
        assert_eq!(agent.buffer.len(), 64);
    }
}
