//! DeepTrader-lite (Wang et al., AAAI 2021): risk–return-balanced
//! portfolio management with market-condition embedding.
//!
//! The original combines an asset scoring unit with a market scoring unit
//! whose output modulates long/short exposure. In this long-only lite
//! variant the market unit outputs a risk appetite ρ ∈ (0,1) that
//! interpolates between the concentrated score portfolio (risk-on) and the
//! uniform portfolio (risk-off):
//! `w = ρ·softmax(scores) + (1−ρ)·uniform`.
//! Both units train jointly by maximising expected log return, like EIIE.

use crate::config::{RlConfig, TrainReport};
use crate::features::{asset_features, market_features, FEAT_DIM};
use cit_market::{AssetPanel, DecisionContext, Strategy};
use cit_nn::{Activation, Adam, Ctx, Mlp, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The DeepTrader-lite agent.
pub struct DeepTrader {
    cfg: RlConfig,
    num_assets: usize,
    store: ParamStore,
    /// Shared per-asset scoring network over technical features.
    scorer: Mlp,
    /// Market-condition unit producing the risk appetite.
    market: Mlp,
    rng: StdRng,
}

impl DeepTrader {
    /// Creates a DeepTrader-lite agent.
    pub fn new(panel: &AssetPanel, cfg: RlConfig) -> Self {
        let m = panel.num_assets();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scorer = Mlp::new(
            &mut store,
            &mut rng,
            "dt.scorer",
            &[FEAT_DIM, cfg.hidden, 1],
            Activation::Tanh,
        );
        let market = Mlp::new(
            &mut store,
            &mut rng,
            "dt.market",
            &[FEAT_DIM, cfg.hidden, 1],
            Activation::Tanh,
        );
        DeepTrader {
            cfg,
            num_assets: m,
            store,
            scorer,
            market,
            rng,
        }
    }

    fn feature_matrix(&self, panel: &AssetPanel, t: usize) -> Tensor {
        let m = self.num_assets;
        let mut out = Tensor::zeros(&[m, FEAT_DIM]);
        for i in 0..m {
            let f = asset_features(panel, t, i);
            for (j, v) in f.iter().enumerate() {
                out.set2(i, j, *v as f32);
            }
        }
        out
    }

    /// Builds the differentiable portfolio for day `t`:
    /// `ρ·softmax(scores) + (1−ρ)/m`.
    fn weights_var(&self, ctx: &mut Ctx<'_>, panel: &AssetPanel, t: usize) -> Var {
        let m = self.num_assets;
        // Asset scores.
        let feats = ctx.input(self.feature_matrix(panel, t));
        let scores2 = self.scorer.forward(ctx, feats); // [m,1]
        let scores = ctx.g.reshape(scores2, &[m]);
        let conc = ctx.g.softmax_last(scores);
        // Market risk appetite.
        let mf: Vec<f32> = market_features(panel, t)
            .iter()
            .map(|&v| v as f32)
            .collect();
        let mf_in = ctx.input(Tensor::vector(&mf));
        let rho_raw = self.market.forward_vec(ctx, mf_in); // [1]
        let rho = ctx.g.sigmoid(rho_raw); // (0,1)
                                          // Broadcast ρ to m dims: ones[m,1] · ρ[1,1] → [m,1] → [m].
        let ones = ctx.input(Tensor::ones(&[m, 1]));
        let rho11 = ctx.g.reshape(rho, &[1, 1]);
        let rho_m2 = ctx.g.matmul(ones, rho11);
        let rho_m = ctx.g.reshape(rho_m2, &[m]);
        let risk_on = ctx.g.mul(conc, rho_m);
        // (1-ρ)/m term.
        let neg_rho = ctx.g.neg(rho_m);
        let one_minus = ctx.g.add_scalar(neg_rho, 1.0);
        let risk_off = ctx.g.scale(one_minus, 1.0 / m as f32);
        ctx.g.add(risk_on, risk_off)
    }

    /// The current risk appetite ρ at day `t` (diagnostic).
    pub fn risk_appetite(&self, panel: &AssetPanel, t: usize) -> f64 {
        let mut ctx = Ctx::new(&self.store);
        let mf: Vec<f32> = market_features(panel, t)
            .iter()
            .map(|&v| v as f32)
            .collect();
        let mf_in = ctx.input(Tensor::vector(&mf));
        let rho_raw = self.market.forward_vec(&mut ctx, mf_in);
        let rho = ctx.g.sigmoid(rho_raw);
        ctx.g.value(rho).data()[0] as f64
    }

    /// Deterministic evaluation action.
    pub fn act(&self, panel: &AssetPanel, t: usize) -> Vec<f64> {
        let mut ctx = Ctx::new(&self.store);
        let w = self.weights_var(&mut ctx, panel, t);
        ctx.g.value(w).data().iter().map(|&v| v as f64).collect()
    }

    /// Trains by maximising mean log return over random mini-batches.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        let start = self.cfg.min_start();
        let end = panel.test_start() - 1;
        assert!(start + 2 < end, "training period too short");
        let batch = 16usize;
        let updates = (self.cfg.total_steps / batch).max(1);
        let mut opt = Adam::new(self.cfg.lr, self.cfg.weight_decay);
        let mut update_rewards = Vec::new();

        for _ in 0..updates {
            let days: Vec<usize> = (0..batch)
                .map(|_| self.rng.random_range(start..end))
                .collect();
            let mut ctx = Ctx::new(&self.store);
            let mut total: Option<Var> = None;
            let mut batch_reward = 0.0f64;
            for &t in &days {
                let w = self.weights_var(&mut ctx, panel, t);
                let rel: Vec<f32> = panel
                    .price_relatives(t + 1)
                    .iter()
                    .map(|&v| v as f32)
                    .collect();
                let x = ctx.input(Tensor::vector(&rel));
                let growth_vec = ctx.g.mul(w, x);
                let growth = ctx.g.sum_all(growth_vec);
                let logret = ctx.g.ln(growth);
                batch_reward += ctx.g.value(logret).item() as f64;
                let neg = ctx.g.scale(logret, -1.0 / batch as f32);
                total = Some(match total {
                    Some(acc) => ctx.g.add(acc, neg),
                    None => neg,
                });
            }
            let loss = total.expect("non-empty batch");
            let grads = ctx.backward(loss);
            self.store.apply_grads(grads);
            self.store.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&mut self.store);
            update_rewards.push(batch_reward / batch as f64);
        }
        TrainReport {
            update_rewards,
            steps: updates * batch,
        }
    }
}

impl Strategy for DeepTrader {
    fn name(&self) -> String {
        "DeepTrader".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    #[test]
    fn weights_are_simplex_and_bounded_by_rho() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 200,
            test_start: 160,
            ..Default::default()
        }
        .generate();
        let agent = DeepTrader::new(&p, RlConfig::smoke(41));
        let a = agent.act(&p, 100);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        let rho = agent.risk_appetite(&p, 100);
        // Every weight ≥ (1−ρ)/m — the uniform floor of the risk-off leg.
        let floor = (1.0 - rho) / 4.0 - 1e-6;
        assert!(a.iter().all(|&x| x >= floor), "{a:?} vs floor {floor}");
    }

    #[test]
    fn trains_toward_winner() {
        let days = 320;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.01 } else { 0.997 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.002, c * 0.998, c]);
            }
        }
        let p = cit_market::AssetPanel::new("mom", days, 3, data, 280);
        let mut cfg = RlConfig::smoke(42);
        cfg.total_steps = 1600;
        cfg.lr = 3e-3;
        let mut agent = DeepTrader::new(&p, cfg);
        agent.train(&p);
        let a = agent.act(&p, 290);
        let max_idx = (0..3)
            .max_by(|&x, &y| a[x].partial_cmp(&a[y]).unwrap())
            .unwrap();
        assert_eq!(max_idx, 0, "DeepTrader should favour the winner, got {a:?}");
    }

    #[test]
    fn risk_appetite_in_unit_interval() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 150,
            test_start: 120,
            ..Default::default()
        }
        .generate();
        let agent = DeepTrader::new(&p, RlConfig::smoke(43));
        for t in [30, 60, 100] {
            let rho = agent.risk_appetite(&p, t);
            assert!((0.0..=1.0).contains(&rho));
        }
    }
}
