//! Pluggable state construction for baseline agents.

use crate::features::{state_dim, state_vector, FEAT_LOOKBACK};
use cit_market::AssetPanel;

/// Builds the observation vector an agent sees at day `t`.
pub trait StateBuilder {
    /// Observation dimension for a panel with `m` assets.
    fn dim(&self, m: usize) -> usize;

    /// Builds the observation at day `t` (must only read days ≤ `t`).
    fn build(&self, panel: &AssetPanel, t: usize, prev_weights: &[f64]) -> Vec<f64>;

    /// Days of history required before `build` is valid.
    fn min_history(&self) -> usize {
        FEAT_LOOKBACK
    }
}

/// The default state: per-asset technical features plus previous weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultState;

impl StateBuilder for DefaultState {
    fn dim(&self, m: usize) -> usize {
        state_dim(m)
    }

    fn build(&self, panel: &AssetPanel, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        state_vector(panel, t, prev_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    #[test]
    fn default_state_matches_declared_dim() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 80,
            test_start: 60,
            ..Default::default()
        }
        .generate();
        let b = DefaultState;
        let s = b.build(&p, 30, &[0.25; 4]);
        assert_eq!(s.len(), b.dim(4));
    }
}
