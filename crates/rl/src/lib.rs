//! # cit-rl
//!
//! Deep-RL portfolio baselines from the paper's Table III — A2C, PPO, DDPG
//! (FinRL-style), EIIE, SARL-lite and DeepTrader-lite — plus the rollout
//! machinery they share: technical-feature states, TD(λ) n-step return
//! targets (paper Eq. 6–7) and pluggable state builders.
//!
//! Every agent implements [`cit_market::Strategy`], so a trained agent
//! drops straight into the backtester:
//!
//! ```no_run
//! use cit_market::{run_test_period, EnvConfig, MarketPreset};
//! use cit_rl::{A2c, RlConfig};
//!
//! let panel = MarketPreset::China.scaled(8, 24).generate();
//! let mut agent = A2c::new(&panel, RlConfig::smoke(0));
//! agent.train(&panel);
//! let result = run_test_period(&panel, EnvConfig::default(), &mut agent);
//! println!("A2C Sharpe = {:.2}", result.metrics.sr);
//! ```

#![deny(missing_docs)]

mod a2c;
mod config;
mod ddpg;
mod deeptrader;
mod eiie;
pub mod features;
mod metatrader;
mod ppo;
pub mod returns;
mod sarl;
mod state;

pub use a2c::{normalize_advantages, A2c};
pub use config::{RlConfig, TrainReport};
pub use ddpg::{Ddpg, DdpgConfig};
pub use deeptrader::DeepTrader;
pub use eiie::{Eiie, EiieBody};
pub use metatrader::{MetaTrader, MetaTraderConfig};
pub use ppo::{Ppo, PpoConfig};
pub use sarl::{MovementPredictor, Sarl, SarlState};
pub use state::{DefaultState, StateBuilder};
