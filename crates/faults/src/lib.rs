//! # cit-faults
//!
//! Deterministic, plan-driven fault injection for chaos-testing the
//! cross-insight-trader pipeline: NaN/Inf poisoning of named gradients and
//! tensors at a chosen optimiser update, `ErrorKind`-faked I/O failures on
//! checkpoint and fold writes, corrupted/missing/outlier market rows, and
//! delayed or truncated panel reads.
//!
//! A [`FaultPlan`] is a seeded list of typed [`Fault`]s with a line-based
//! text format (mirroring the checkpoint format), so a failing chaos run
//! can be reproduced bitwise from its plan file. The [`FaultInjector`]
//! follows the `cit-telemetry` handle pattern: the disabled default is an
//! `Option` check per injection point, so production code pays nothing
//! measurable when no plan is active.
//!
//! Every fault fires **exactly once** (interior fired-flags), keyed either
//! by an explicit index (optimiser update for gradient/tensor poison) or by
//! the per-site occurrence count (I/O sites). Fire-once semantics are what
//! make supervisor rollbacks converge: after a rollback replays past the
//! injection point, the fault does not re-fire and the recovered trajectory
//! matches an uninjected run bit-for-bit.
//!
//! ```
//! use cit_faults::{Fault, FaultInjector, FaultPlan, IoFaultKind, PoisonValue};
//!
//! let plan = FaultPlan {
//!     seed: 42,
//!     faults: vec![
//!         Fault::GradPoison { param: "pi0".into(), at_update: 3, value: PoisonValue::Nan },
//!         Fault::Io { site: "checkpoint.save".into(), at: 1, kind: IoFaultKind::Denied },
//!     ],
//! };
//! let parsed = FaultPlan::parse(&plan.to_string()).expect("round-trip");
//! assert_eq!(parsed, plan);
//!
//! let faults = FaultInjector::new(plan);
//! assert!(faults.io_error("checkpoint.save").is_some()); // occurrence 1 fires
//! assert!(faults.io_error("checkpoint.save").is_none()); // fire-once
//!
//! let off = FaultInjector::disabled();
//! assert!(!off.is_enabled());
//! assert!(off.io_error("checkpoint.save").is_none());
//! ```

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable naming a fault-plan file to activate
/// ([`FaultInjector::from_env`]).
pub const FAULT_PLAN_ENV: &str = "CIT_FAULT_PLAN";

/// The non-finite value a poison fault writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonValue {
    /// `f32::NAN`.
    Nan,
    /// `f32::INFINITY`.
    Inf,
    /// `f32::NEG_INFINITY`.
    NegInf,
}

impl PoisonValue {
    /// The concrete `f32` injected.
    pub fn as_f32(self) -> f32 {
        match self {
            PoisonValue::Nan => f32::NAN,
            PoisonValue::Inf => f32::INFINITY,
            PoisonValue::NegInf => f32::NEG_INFINITY,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            PoisonValue::Nan => "nan",
            PoisonValue::Inf => "inf",
            PoisonValue::NegInf => "-inf",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "nan" => Some(PoisonValue::Nan),
            "inf" => Some(PoisonValue::Inf),
            "-inf" => Some(PoisonValue::NegInf),
            _ => None,
        }
    }
}

/// The `std::io::ErrorKind` a faked I/O failure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// `ErrorKind::NotFound`.
    NotFound,
    /// `ErrorKind::PermissionDenied`.
    Denied,
    /// `ErrorKind::Interrupted`.
    Interrupted,
    /// `ErrorKind::BrokenPipe`.
    BrokenPipe,
    /// `ErrorKind::WouldBlock`.
    WouldBlock,
    /// `ErrorKind::Other`.
    Other,
}

impl IoFaultKind {
    /// The `std::io::ErrorKind` this fault fakes.
    pub fn error_kind(self) -> io::ErrorKind {
        match self {
            IoFaultKind::NotFound => io::ErrorKind::NotFound,
            IoFaultKind::Denied => io::ErrorKind::PermissionDenied,
            IoFaultKind::Interrupted => io::ErrorKind::Interrupted,
            IoFaultKind::BrokenPipe => io::ErrorKind::BrokenPipe,
            IoFaultKind::WouldBlock => io::ErrorKind::WouldBlock,
            IoFaultKind::Other => io::ErrorKind::Other,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            IoFaultKind::NotFound => "not-found",
            IoFaultKind::Denied => "denied",
            IoFaultKind::Interrupted => "interrupted",
            IoFaultKind::BrokenPipe => "broken-pipe",
            IoFaultKind::WouldBlock => "would-block",
            IoFaultKind::Other => "other",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "not-found" => Some(IoFaultKind::NotFound),
            "denied" => Some(IoFaultKind::Denied),
            "interrupted" => Some(IoFaultKind::Interrupted),
            "broken-pipe" => Some(IoFaultKind::BrokenPipe),
            "would-block" => Some(IoFaultKind::WouldBlock),
            "other" => Some(IoFaultKind::Other),
            _ => None,
        }
    }
}

/// One typed fault in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Poison the gradient of the first parameter whose name starts with
    /// `param` at optimiser update `at_update` (0-indexed).
    GradPoison {
        /// Parameter-name prefix (e.g. `pi0`, `cross`, `critic`).
        param: String,
        /// The optimiser update at which to poison.
        at_update: u64,
        /// The non-finite value injected.
        value: PoisonValue,
    },
    /// Poison a named tensor (e.g. `pi0.latent`, `cross.latent`) at its
    /// `at`-th production (1-indexed occurrence of that site).
    TensorPoison {
        /// Site name the producer reports (see crate docs of the consumer).
        site: String,
        /// 1-indexed occurrence at which to poison.
        at: u64,
        /// The non-finite value injected.
        value: PoisonValue,
    },
    /// Fake an I/O failure at the `at`-th occurrence (1-indexed) of the
    /// named site (e.g. `checkpoint.save`, `fold.write`).
    Io {
        /// Site name the writer consults.
        site: String,
        /// 1-indexed occurrence at which to fail.
        at: u64,
        /// The faked error kind.
        kind: IoFaultKind,
    },
    /// Corrupt one market row: all OHLC features of (`day`, `asset`)
    /// become NaN at ingestion.
    MarketNan {
        /// Day index.
        day: usize,
        /// Asset index.
        asset: usize,
    },
    /// Drop one market row at ingestion (equivalent to a gap in the feed).
    MarketMissing {
        /// Day index.
        day: usize,
        /// Asset index.
        asset: usize,
    },
    /// Scale one market row's prices by `factor`, producing an outlier
    /// return (and a second one when the next day reverts).
    MarketOutlier {
        /// Day index.
        day: usize,
        /// Asset index.
        asset: usize,
        /// Multiplicative price distortion.
        factor: f64,
    },
    /// Truncate a panel read to its first `days` days.
    TruncateRead {
        /// Number of days the read returns.
        days: usize,
    },
    /// Delay a panel read by `millis` milliseconds (slow-feed simulation).
    DelayRead {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Impose a `millis` stall at the `at`-th occurrence (1-indexed) of
    /// the named site — a stalled socket, a slow disk, a delayed batcher
    /// completion (e.g. `serve.batch.complete`, `serve.sock.read`).
    Delay {
        /// Site name the caller consults.
        site: String,
        /// 1-indexed occurrence at which to stall.
        at: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Truncate the `at`-th write at the named site to its first `bytes`
    /// bytes — a torn spill file or a short socket write
    /// (e.g. `serve.spill.truncate`, `serve.sock.write`).
    PartialWrite {
        /// Site name the writer consults.
        site: String,
        /// 1-indexed occurrence at which to truncate.
        at: u64,
        /// Bytes that actually get written.
        bytes: usize,
    },
    /// Flip one byte (XOR `0xff`) at `offset` of the `at`-th write at the
    /// named site — silent on-disk corruption a checksum must catch
    /// (e.g. `serve.spill.corrupt`).
    CorruptWrite {
        /// Site name the writer consults.
        site: String,
        /// 1-indexed occurrence at which to corrupt.
        at: u64,
        /// Byte offset to flip (clamped to the payload by the writer).
        offset: usize,
    },
}

/// Errors raised while reading a fault plan.
#[derive(Debug)]
pub enum PlanError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the plan text.
    Malformed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Io(e) => write!(f, "fault-plan io error: {e}"),
            PlanError::Malformed(m) => write!(f, "malformed fault plan: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<io::Error> for PlanError {
    fn from(e: io::Error) -> Self {
        PlanError::Io(e)
    }
}

const HEADER: &str = "cit-faults v1";

/// A seeded, ordered list of faults to inject into one run. The seed is
/// recorded so a chaos run's artifacts name the exact (plan, seed) pair
/// that reproduces it; the plan itself is fully deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed recorded with the plan (reported in telemetry/logs).
    pub seed: u64,
    /// The faults, each firing exactly once.
    pub faults: Vec<Fault>,
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        let _ = writeln!(out, "seed {}", self.seed);
        for fault in &self.faults {
            match fault {
                Fault::GradPoison {
                    param,
                    at_update,
                    value,
                } => {
                    let _ = writeln!(out, "grad {param} {at_update} {}", value.as_str());
                }
                Fault::TensorPoison { site, at, value } => {
                    let _ = writeln!(out, "tensor {site} {at} {}", value.as_str());
                }
                Fault::Io { site, at, kind } => {
                    let _ = writeln!(out, "io {site} {at} {}", kind.as_str());
                }
                Fault::MarketNan { day, asset } => {
                    let _ = writeln!(out, "market-nan {day} {asset}");
                }
                Fault::MarketMissing { day, asset } => {
                    let _ = writeln!(out, "market-missing {day} {asset}");
                }
                Fault::MarketOutlier { day, asset, factor } => {
                    let _ = writeln!(out, "market-outlier {day} {asset} {factor:e}");
                }
                Fault::TruncateRead { days } => {
                    let _ = writeln!(out, "truncate-read {days}");
                }
                Fault::DelayRead { millis } => {
                    let _ = writeln!(out, "delay-read {millis}");
                }
                Fault::Delay { site, at, millis } => {
                    let _ = writeln!(out, "delay {site} {at} {millis}");
                }
                Fault::PartialWrite { site, at, bytes } => {
                    let _ = writeln!(out, "partial-write {site} {at} {bytes}");
                }
                Fault::CorruptWrite { site, at, offset } => {
                    let _ = writeln!(out, "corrupt-write {site} {at} {offset}");
                }
            }
        }
        f.write_str(&out)
    }
}

impl FaultPlan {
    /// Parses the text format produced by the [`FaultPlan`] `Display` impl
    /// (`plan.to_string()`).
    /// Comments (`#`) and blank lines are tolerated anywhere, including
    /// before the header.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let mut lines = text.lines().enumerate();
        let header = lines
            .by_ref()
            .map(|(_, l)| l)
            .find(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .ok_or_else(|| PlanError::Malformed("empty plan".into()))?;
        if header.trim() != HEADER {
            return Err(PlanError::Malformed(format!("unexpected header: {header}")));
        }
        let mut plan = FaultPlan::default();
        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let bad = |what: &str| PlanError::Malformed(format!("line {lineno}: {what}: {line}"));
            let arg = |i: usize| -> Result<&str, PlanError> {
                parts.get(i).copied().ok_or_else(|| bad("missing field"))
            };
            let num = |i: usize| -> Result<u64, PlanError> {
                arg(i)?.parse().map_err(|_| bad("bad number"))
            };
            match parts[0] {
                "seed" => plan.seed = num(1)?,
                "grad" => plan.faults.push(Fault::GradPoison {
                    param: arg(1)?.to_string(),
                    at_update: num(2)?,
                    value: PoisonValue::parse(arg(3)?).ok_or_else(|| bad("bad poison value"))?,
                }),
                "tensor" => plan.faults.push(Fault::TensorPoison {
                    site: arg(1)?.to_string(),
                    at: num(2)?,
                    value: PoisonValue::parse(arg(3)?).ok_or_else(|| bad("bad poison value"))?,
                }),
                "io" => plan.faults.push(Fault::Io {
                    site: arg(1)?.to_string(),
                    at: num(2)?,
                    kind: IoFaultKind::parse(arg(3)?).ok_or_else(|| bad("bad io kind"))?,
                }),
                "market-nan" => plan.faults.push(Fault::MarketNan {
                    day: num(1)? as usize,
                    asset: num(2)? as usize,
                }),
                "market-missing" => plan.faults.push(Fault::MarketMissing {
                    day: num(1)? as usize,
                    asset: num(2)? as usize,
                }),
                "market-outlier" => plan.faults.push(Fault::MarketOutlier {
                    day: num(1)? as usize,
                    asset: num(2)? as usize,
                    factor: arg(3)?.parse().map_err(|_| bad("bad factor"))?,
                }),
                "truncate-read" => plan.faults.push(Fault::TruncateRead {
                    days: num(1)? as usize,
                }),
                "delay-read" => plan.faults.push(Fault::DelayRead { millis: num(1)? }),
                "delay" => plan.faults.push(Fault::Delay {
                    site: arg(1)?.to_string(),
                    at: num(2)?,
                    millis: num(3)?,
                }),
                "partial-write" => plan.faults.push(Fault::PartialWrite {
                    site: arg(1)?.to_string(),
                    at: num(2)?,
                    bytes: num(3)? as usize,
                }),
                "corrupt-write" => plan.faults.push(Fault::CorruptWrite {
                    site: arg(1)?.to_string(),
                    at: num(2)?,
                    offset: num(3)? as usize,
                }),
                _ => return Err(bad("unknown fault kind")),
            }
        }
        Ok(plan)
    }

    /// Loads a plan from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PlanError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Saves the plan to a file (parents created).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_string())
    }
}

struct Inner {
    plan: FaultPlan,
    /// One fire-once flag per fault, in plan order.
    fired: Vec<AtomicBool>,
    /// Per-site occurrence counters for `io`/`tensor` faults.
    counters: Mutex<BTreeMap<String, u64>>,
    /// Human-readable log of fired faults (for tests and telemetry).
    log: Mutex<Vec<String>>,
}

/// The injection handle threaded through trainers, writers and ingestion.
///
/// Cloning is cheap (one `Arc`); clones share fired-flags and counters, so
/// a plan is consumed exactly once per injector regardless of how many
/// components hold a handle. The default value is disabled: every
/// injection point then costs a single `Option` branch.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl FaultInjector {
    /// The zero-cost disabled handle: every injection point is a no-op.
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// An enabled handle executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        FaultInjector {
            inner: Some(Arc::new(Inner {
                plan,
                fired,
                counters: Mutex::new(BTreeMap::new()),
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Resolves the `CIT_FAULT_PLAN` environment variable: unset (or empty)
    /// yields the disabled handle, otherwise the named plan file is loaded.
    pub fn from_env() -> Result<Self, PlanError> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(path) if !path.trim().is_empty() => Ok(Self::new(FaultPlan::load(path.trim())?)),
            _ => Ok(Self::disabled()),
        }
    }

    /// `true` when a plan is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active plan's recorded seed (`None` when disabled).
    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.plan.seed)
    }

    /// Marks fault `idx` fired; returns `false` when it already had.
    fn fire(inner: &Inner, idx: usize, what: impl FnOnce() -> String) -> bool {
        if inner.fired[idx].swap(true, Ordering::SeqCst) {
            return false;
        }
        inner.log.lock().expect("faults log poisoned").push(what());
        true
    }

    /// Gradient-poison faults scheduled for optimiser update `update`.
    /// Returns `(param-prefix, value)` pairs; each fault fires once, so a
    /// supervisor rollback replaying this update is not re-poisoned.
    #[inline]
    pub fn grad_poison(&self, update: u64) -> Vec<(String, f32)> {
        let Some(inner) = self.inner.as_deref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::GradPoison {
                param,
                at_update,
                value,
            } = fault
            {
                if *at_update == update
                    && Self::fire(inner, idx, || {
                        format!(
                            "grad {param} poisoned ({}) at update {update}",
                            value.as_str()
                        )
                    })
                {
                    out.push((param.clone(), value.as_f32()));
                }
            }
        }
        out
    }

    /// Tensor poison for the named site, keyed by occurrence count (every
    /// call increments the site's counter). `None` when nothing fires.
    #[inline]
    pub fn tensor_poison(&self, site: &str) -> Option<f32> {
        let inner = self.inner.as_deref()?;
        let count = Self::bump(inner, site);
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::TensorPoison { site: s, at, value } = fault {
                if s == site
                    && *at == count
                    && Self::fire(inner, idx, || {
                        format!(
                            "tensor {site} poisoned ({}) at occurrence {count}",
                            value.as_str()
                        )
                    })
                {
                    return Some(value.as_f32());
                }
            }
        }
        None
    }

    /// Faked I/O failure for the named site, keyed by occurrence count
    /// (every call increments the site's counter). `None` when the write
    /// should proceed normally.
    #[inline]
    pub fn io_error(&self, site: &str) -> Option<io::Error> {
        let inner = self.inner.as_deref()?;
        let count = Self::bump(inner, site);
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::Io { site: s, at, kind } = fault {
                if s == site
                    && *at == count
                    && Self::fire(inner, idx, || {
                        format!("io {site} failed ({}) at occurrence {count}", kind.as_str())
                    })
                {
                    return Some(io::Error::new(
                        kind.error_kind(),
                        format!("injected fault: {site} occurrence {count}"),
                    ));
                }
            }
        }
        None
    }

    /// Market-row faults to apply at panel ingestion (each fires once).
    pub fn market_faults(&self) -> Vec<Fault> {
        let Some(inner) = self.inner.as_deref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            let market = matches!(
                fault,
                Fault::MarketNan { .. } | Fault::MarketMissing { .. } | Fault::MarketOutlier { .. }
            );
            if market && Self::fire(inner, idx, || format!("market fault applied: {fault:?}")) {
                out.push(fault.clone());
            }
        }
        out
    }

    /// Day count a truncated panel read should return (fires once).
    pub fn truncate_read(&self) -> Option<usize> {
        let inner = self.inner.as_deref()?;
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::TruncateRead { days } = fault {
                if Self::fire(inner, idx, || format!("read truncated to {days} days")) {
                    return Some(*days);
                }
            }
        }
        None
    }

    /// Sleep to impose on a panel read (fires once).
    pub fn read_delay(&self) -> Option<Duration> {
        let inner = self.inner.as_deref()?;
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::DelayRead { millis } = fault {
                if Self::fire(inner, idx, || format!("read delayed {millis} ms")) {
                    return Some(Duration::from_millis(*millis));
                }
            }
        }
        None
    }

    /// Site-keyed stall for the named site, keyed by occurrence count
    /// (every call increments the site's counter). The caller sleeps for
    /// the returned duration — a stalled socket, slow disk or delayed
    /// batcher completion. `None` when nothing fires.
    #[inline]
    pub fn delay_at(&self, site: &str) -> Option<Duration> {
        let inner = self.inner.as_deref()?;
        let count = Self::bump(inner, site);
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::Delay {
                site: s,
                at,
                millis,
            } = fault
            {
                if s == site
                    && *at == count
                    && Self::fire(inner, idx, || {
                        format!("delay {site} stalled {millis} ms at occurrence {count}")
                    })
                {
                    return Some(Duration::from_millis(*millis));
                }
            }
        }
        None
    }

    /// Byte cap for a truncated write at the named site, keyed by
    /// occurrence count. The writer persists only the first `n` bytes —
    /// a torn spill file or a short socket write. `None` when the write
    /// should complete normally.
    #[inline]
    pub fn partial_write(&self, site: &str) -> Option<usize> {
        let inner = self.inner.as_deref()?;
        let count = Self::bump(inner, site);
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::PartialWrite { site: s, at, bytes } = fault {
                if s == site
                    && *at == count
                    && Self::fire(inner, idx, || {
                        format!("write {site} truncated to {bytes} bytes at occurrence {count}")
                    })
                {
                    return Some(*bytes);
                }
            }
        }
        None
    }

    /// Byte offset to flip (XOR `0xff`) in a write at the named site,
    /// keyed by occurrence count — silent corruption for checksum tests.
    /// The writer clamps the offset to the payload length. `None` when
    /// the write should proceed untouched.
    #[inline]
    pub fn corrupt_write(&self, site: &str) -> Option<usize> {
        let inner = self.inner.as_deref()?;
        let count = Self::bump(inner, site);
        for (idx, fault) in inner.plan.faults.iter().enumerate() {
            if let Fault::CorruptWrite {
                site: s,
                at,
                offset,
            } = fault
            {
                if s == site
                    && *at == count
                    && Self::fire(inner, idx, || {
                        format!("write {site} corrupted at byte {offset}, occurrence {count}")
                    })
                {
                    return Some(*offset);
                }
            }
        }
        None
    }

    /// Human-readable log of every fault fired so far.
    pub fn fired_log(&self) -> Vec<String> {
        match self.inner.as_deref() {
            Some(inner) => inner.log.lock().expect("faults log poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Number of faults fired so far.
    pub fn fired_count(&self) -> usize {
        match self.inner.as_deref() {
            Some(inner) => inner
                .fired
                .iter()
                .filter(|f| f.load(Ordering::SeqCst))
                .count(),
            None => 0,
        }
    }

    fn bump(inner: &Inner, site: &str) -> u64 {
        let mut counters = inner.counters.lock().expect("faults counters poisoned");
        let c = counters.entry(site.to_string()).or_insert(0);
        *c += 1;
        *c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            faults: vec![
                Fault::GradPoison {
                    param: "pi0".into(),
                    at_update: 3,
                    value: PoisonValue::Nan,
                },
                Fault::TensorPoison {
                    site: "cross.latent".into(),
                    at: 2,
                    value: PoisonValue::Inf,
                },
                Fault::Io {
                    site: "checkpoint.save".into(),
                    at: 2,
                    kind: IoFaultKind::Denied,
                },
                Fault::MarketNan { day: 5, asset: 1 },
                Fault::MarketMissing { day: 6, asset: 0 },
                Fault::MarketOutlier {
                    day: 9,
                    asset: 2,
                    factor: 40.0,
                },
                Fault::TruncateRead { days: 64 },
                Fault::DelayRead { millis: 1 },
                Fault::Delay {
                    site: "serve.batch.complete".into(),
                    at: 2,
                    millis: 3,
                },
                Fault::PartialWrite {
                    site: "serve.spill.truncate".into(),
                    at: 1,
                    bytes: 40,
                },
                Fault::CorruptWrite {
                    site: "serve.spill.corrupt".into(),
                    at: 1,
                    offset: 9,
                },
            ],
        }
    }

    #[test]
    fn plan_text_roundtrip() {
        let plan = sample_plan();
        let text = plan.to_string();
        assert!(text.starts_with(HEADER));
        let parsed = FaultPlan::parse(&text).expect("parse");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plan_tolerates_comments_and_blank_lines() {
        let text = "cit-faults v1\n\n# chaos\nseed 9\ngrad cross 1 inf\n";
        let plan = FaultPlan::parse(text).expect("parse");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.faults.len(), 1);
    }

    #[test]
    fn plan_rejects_garbage() {
        assert!(FaultPlan::parse("nope\n").is_err());
        assert!(FaultPlan::parse("cit-faults v1\nexplode everything\n").is_err());
        assert!(FaultPlan::parse("cit-faults v1\ngrad pi0 3 sideways\n").is_err());
        assert!(FaultPlan::parse("cit-faults v1\nio checkpoint.save x denied\n").is_err());
    }

    #[test]
    fn grad_poison_fires_once_at_its_update() {
        let faults = FaultInjector::new(sample_plan());
        assert!(faults.grad_poison(0).is_empty());
        let hits = faults.grad_poison(3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "pi0");
        assert!(hits[0].1.is_nan());
        // A rollback replaying update 3 is not re-poisoned.
        assert!(faults.grad_poison(3).is_empty());
    }

    #[test]
    fn io_fault_fires_at_exact_occurrence() {
        let faults = FaultInjector::new(sample_plan());
        assert!(faults.io_error("checkpoint.save").is_none()); // occurrence 1
        let err = faults.io_error("checkpoint.save").expect("occurrence 2");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert!(faults.io_error("checkpoint.save").is_none()); // fire-once
        assert!(faults.io_error("fold.write").is_none()); // different site
    }

    #[test]
    fn tensor_poison_counts_site_occurrences() {
        let faults = FaultInjector::new(sample_plan());
        assert!(faults.tensor_poison("cross.latent").is_none());
        let v = faults.tensor_poison("cross.latent").expect("occurrence 2");
        assert!(v.is_infinite());
        assert!(faults.tensor_poison("cross.latent").is_none());
    }

    #[test]
    fn market_and_read_faults_fire_once() {
        let faults = FaultInjector::new(sample_plan());
        assert_eq!(faults.market_faults().len(), 3);
        assert!(faults.market_faults().is_empty());
        assert_eq!(faults.truncate_read(), Some(64));
        assert_eq!(faults.truncate_read(), None);
        assert_eq!(faults.read_delay(), Some(Duration::from_millis(1)));
        assert_eq!(faults.read_delay(), None);
    }

    #[test]
    fn serve_plane_faults_fire_at_exact_occurrences() {
        let faults = FaultInjector::new(sample_plan());
        assert_eq!(faults.delay_at("serve.batch.complete"), None); // occ 1
        assert_eq!(
            faults.delay_at("serve.batch.complete"),
            Some(Duration::from_millis(3))
        );
        assert_eq!(faults.delay_at("serve.batch.complete"), None); // fire-once
        assert_eq!(faults.partial_write("serve.spill.truncate"), Some(40));
        assert_eq!(faults.partial_write("serve.spill.truncate"), None);
        assert_eq!(faults.corrupt_write("serve.spill.corrupt"), Some(9));
        assert_eq!(faults.corrupt_write("serve.spill.corrupt"), None);
        // Different sites keep independent counters.
        assert_eq!(faults.partial_write("serve.sock.write"), None);
    }

    #[test]
    fn same_plan_reproduces_the_same_firing_sequence() {
        let drive = |faults: &FaultInjector| {
            for u in 0..6 {
                let _ = faults.grad_poison(u);
            }
            for _ in 0..3 {
                let _ = faults.io_error("checkpoint.save");
                let _ = faults.tensor_poison("cross.latent");
            }
            let _ = faults.market_faults();
            faults.fired_log()
        };
        let a = drive(&FaultInjector::new(sample_plan()));
        let b = drive(&FaultInjector::new(sample_plan()));
        assert_eq!(a, b, "same plan + seed must reproduce the same failures");
        assert!(!a.is_empty());
    }

    #[test]
    fn disabled_injector_is_inert() {
        let off = FaultInjector::disabled();
        assert!(!off.is_enabled());
        assert!(off.grad_poison(0).is_empty());
        assert!(off.io_error("checkpoint.save").is_none());
        assert!(off.tensor_poison("x").is_none());
        assert!(off.market_faults().is_empty());
        assert_eq!(off.fired_count(), 0);
    }

    #[test]
    fn from_env_loads_plan_file() {
        let dir = std::env::temp_dir().join(format!("cit_faults_env_{}", std::process::id()));
        let path = dir.join("plan.txt");
        sample_plan().save(&path).expect("save plan");
        // Note: set_var is process-global; this is the only test touching it.
        std::env::set_var(FAULT_PLAN_ENV, &path);
        let faults = FaultInjector::from_env().expect("from_env");
        assert!(faults.is_enabled());
        assert_eq!(faults.seed(), Some(7));
        std::env::set_var(FAULT_PLAN_ENV, "");
        let off = FaultInjector::from_env().expect("empty -> disabled");
        assert!(!off.is_enabled());
        std::env::remove_var(FAULT_PLAN_ENV);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clones_share_fired_state() {
        let a = FaultInjector::new(sample_plan());
        let b = a.clone();
        assert_eq!(a.grad_poison(3).len(), 1);
        assert!(b.grad_poison(3).is_empty(), "clone shares fire-once flags");
        assert_eq!(b.fired_count(), 1);
    }
}
