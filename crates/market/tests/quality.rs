//! Property-style tests of the data-quality layer: seeded generators dirty
//! clean synthetic panels in random ways, and validate → repair → env
//! round-trips must never produce a non-finite or non-positive price, for
//! every repair policy that accepts the panel.

use cit_market::{
    run_test_period, EnvConfig, IssueKind, QualityConfig, QualityError, RawPanel, RepairPolicy,
    SynthConfig, UniformStrategy, NUM_FEATURES,
};
use cit_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAYS: usize = 80;
const ASSETS: usize = 4;

fn clean_raw(seed: u64) -> RawPanel {
    let p = SynthConfig {
        num_assets: ASSETS,
        num_days: DAYS,
        test_start: 60,
        seed,
        ..Default::default()
    }
    .generate();
    RawPanel::from_panel(&p)
}

/// Randomly corrupts up to `max_hits` cells/rows: NaN cells, infinities,
/// zero/negative prices, whole missing rows and outlier spikes — always
/// leaving day 0 intact so forward-fill has an anchor.
fn dirty(raw: &mut RawPanel, rng: &mut StdRng, max_hits: usize) -> usize {
    let hits = rng.random_range(1..max_hits + 1);
    for _ in 0..hits {
        let t = rng.random_range(1..raw.num_days);
        let i = rng.random_range(0..raw.num_assets);
        let f = rng.random_range(0..NUM_FEATURES);
        let idx = (t * raw.num_assets + i) * NUM_FEATURES + f;
        match rng.random_range(0..5usize) {
            0 => raw.data[idx] = f64::NAN,
            1 => raw.data[idx] = f64::INFINITY,
            2 => raw.data[idx] = -raw.data[idx],
            3 => {
                for f in 0..NUM_FEATURES {
                    raw.data[(t * raw.num_assets + i) * NUM_FEATURES + f] = f64::NAN;
                }
            }
            _ => {
                for f in 0..NUM_FEATURES {
                    raw.data[(t * raw.num_assets + i) * NUM_FEATURES + f] *= 25.0;
                }
            }
        }
    }
    hits
}

fn assert_panel_clean(panel: &cit_market::AssetPanel) {
    for t in 0..panel.num_days() {
        for i in 0..panel.num_assets() {
            for f in [
                cit_market::Feature::Open,
                cit_market::Feature::High,
                cit_market::Feature::Low,
                cit_market::Feature::Close,
            ] {
                let v = panel.price(t, i, f);
                assert!(
                    v.is_finite() && v > 0.0,
                    "dirty price {v} at day {t}, asset {i} survived repair"
                );
            }
        }
    }
}

#[test]
fn forward_fill_roundtrip_never_leaves_dirty_prices() {
    let tel = Telemetry::disabled();
    let cfg = QualityConfig::default();
    for seed in 0..40u64 {
        let mut raw = clean_raw(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1517);
        dirty(&mut raw, &mut rng, 12);
        let report = raw.validate(&cfg);
        assert!(report.has_critical(), "seed {seed}: corruption undetected");

        let (panel, rep) = raw
            .repair(RepairPolicy::ForwardFill, &cfg, &tel)
            .unwrap_or_else(|e| panic!("seed {seed}: forward fill failed: {e}"));
        assert_panel_clean(&panel);
        let invalid_cells = report.count(IssueKind::NonFinitePrice)
            + report.count(IssueKind::NonPositivePrice)
            + report.count(IssueKind::MissingRow);
        if invalid_cells > 0 {
            assert!(rep.repaired_cells > 0, "seed {seed}: nothing repaired");
        }

        // The repaired panel must drive a full backtest without panicking.
        let env = EnvConfig {
            window: 8,
            transaction_cost: 1e-3,
        };
        let res = run_test_period(&panel, env, &mut UniformStrategy);
        assert!(res.wealth.iter().all(|w| w.is_finite() && *w > 0.0));
    }
}

#[test]
fn clamp_returns_bounds_every_return_across_seeds() {
    let tel = Telemetry::disabled();
    let cfg = QualityConfig::default();
    for seed in 40..60u64 {
        let mut raw = clean_raw(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A);
        dirty(&mut raw, &mut rng, 8);
        let (panel, _) = raw
            .repair(RepairPolicy::ClampReturns, &cfg, &tel)
            .unwrap_or_else(|e| panic!("seed {seed}: clamp failed: {e}"));
        assert_panel_clean(&panel);
        for t in 1..panel.num_days() {
            for r in panel.growth_ratios(t) {
                assert!(
                    r.abs() <= cfg.max_abs_return + 1e-9,
                    "seed {seed}: return {r} above bound at day {t}"
                );
            }
        }
    }
}

#[test]
fn drop_assets_keeps_only_clean_assets_or_reports_unrepairable() {
    let tel = Telemetry::disabled();
    let cfg = QualityConfig::default();
    for seed in 60..85u64 {
        let mut raw = clean_raw(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        dirty(&mut raw, &mut rng, 6);
        match raw.repair(RepairPolicy::DropAssets, &cfg, &tel) {
            Ok((panel, rep)) => {
                assert!(
                    !rep.dropped_assets.is_empty(),
                    "seed {seed}: corruption was injected but nothing dropped"
                );
                assert_eq!(panel.num_assets(), ASSETS - rep.dropped_assets.len());
                assert_panel_clean(&panel);
            }
            Err(QualityError::Unrepairable(_)) => {
                // Every asset was hit — acceptable outcome for this policy.
            }
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

#[test]
fn reject_policy_errors_iff_criticals_exist() {
    let tel = Telemetry::disabled();
    let cfg = QualityConfig::default();
    // Clean panels pass …
    for seed in 0..10u64 {
        let raw = clean_raw(seed);
        assert!(
            raw.repair(RepairPolicy::Reject, &cfg, &tel).is_ok(),
            "seed {seed}"
        );
    }
    // … dirty ones are rejected with the offending assets named.
    for seed in 10..20u64 {
        let mut raw = clean_raw(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        dirty(&mut raw, &mut rng, 4);
        let err = raw
            .repair(RepairPolicy::Reject, &cfg, &tel)
            .expect_err("criticals must be rejected");
        assert!(matches!(err, QualityError::Rejected(_)), "seed {seed}");
        assert!(err.to_string().contains('A'), "offenders named: {err}");
    }
}

#[test]
fn validation_counts_are_complete_even_when_examples_cap() {
    let cfg = QualityConfig::default();
    let mut raw = clean_raw(99);
    // 30 NaN closes: more than the per-kind example cap.
    for t in 1..31 {
        raw.data[(t * raw.num_assets) * NUM_FEATURES + 3] = f64::NAN;
    }
    let report = raw.validate(&cfg);
    assert_eq!(report.count(IssueKind::NonFinitePrice), 30);
    assert!(report.examples.len() < 30, "examples are capped");
    assert_eq!(report.offending_assets(), vec!["A000".to_string()]);
}
