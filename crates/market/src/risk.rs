//! Extended risk analytics beyond the paper's AR/SR/CR: Sortino ratio,
//! downside deviation, historical value-at-risk / expected shortfall,
//! turnover statistics and rolling drawdown curves. These support the
//! "risk of price slumps" discussion in Section V-A and give downstream
//! users a production-grade risk report.

use crate::metrics::TRADING_DAYS;

/// Downside deviation of daily returns below a minimum acceptable return
/// (MAR, default 0): `sqrt(E[min(r − mar, 0)²])`.
pub fn downside_deviation(daily_returns: &[f64], mar: f64) -> f64 {
    if daily_returns.is_empty() {
        return 0.0;
    }
    let sum: f64 = daily_returns
        .iter()
        .map(|r| {
            let d = (r - mar).min(0.0);
            d * d
        })
        .sum();
    (sum / daily_returns.len() as f64).sqrt()
}

/// Annualised Sortino ratio: mean excess return over downside deviation.
///
/// Returns 0 when there is no downside volatility.
pub fn sortino_ratio(daily_returns: &[f64], mar: f64) -> f64 {
    if daily_returns.len() < 2 {
        return 0.0;
    }
    let mean = daily_returns.iter().sum::<f64>() / daily_returns.len() as f64;
    let dd = downside_deviation(daily_returns, mar);
    if dd < 1e-12 {
        return 0.0;
    }
    (mean - mar) / dd * TRADING_DAYS.sqrt()
}

/// Historical value-at-risk at confidence `alpha` (e.g. 0.95): the loss
/// threshold exceeded on only `(1−alpha)` of days, reported as a positive
/// number. Returns 0 for empty input.
pub fn value_at_risk(daily_returns: &[f64], alpha: f64) -> f64 {
    assert!(
        (0.5..1.0).contains(&alpha),
        "VaR confidence must be in [0.5, 1)"
    );
    if daily_returns.is_empty() {
        return 0.0;
    }
    let mut sorted = daily_returns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite returns"));
    let idx = ((1.0 - alpha) * sorted.len() as f64).floor() as usize;
    let idx = idx.min(sorted.len() - 1);
    (-sorted[idx]).max(0.0)
}

/// Expected shortfall (CVaR) at confidence `alpha`: mean loss on the worst
/// `(1−alpha)` fraction of days, as a positive number.
pub fn expected_shortfall(daily_returns: &[f64], alpha: f64) -> f64 {
    assert!(
        (0.5..1.0).contains(&alpha),
        "ES confidence must be in [0.5, 1)"
    );
    if daily_returns.is_empty() {
        return 0.0;
    }
    let mut sorted = daily_returns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite returns"));
    let k = (((1.0 - alpha) * sorted.len() as f64).ceil() as usize).max(1);
    let tail: f64 = sorted[..k].iter().sum();
    (-(tail / k as f64)).max(0.0)
}

/// Average daily turnover `Σ_i |w_t,i − w_{t−1},i|` of a weight history.
///
/// Returns 0 with fewer than two weight vectors.
pub fn average_turnover(weights: &[Vec<f64>]) -> f64 {
    if weights.len() < 2 {
        return 0.0;
    }
    let total: f64 = weights
        .windows(2)
        .map(|w| {
            w[0].iter()
                .zip(&w[1])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        })
        .sum();
    total / (weights.len() - 1) as f64
}

/// Herfindahl concentration index of the average portfolio: `Σ w̄_i²`,
/// ranging from `1/m` (uniform) to 1 (single asset).
pub fn concentration(weights: &[Vec<f64>]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let m = weights[0].len();
    let mut avg = vec![0.0f64; m];
    for w in weights {
        for (a, &x) in avg.iter_mut().zip(w) {
            *a += x / weights.len() as f64;
        }
    }
    avg.iter().map(|x| x * x).sum()
}

/// The running drawdown series of a wealth curve (same length, values in
/// `[0, 1]`).
pub fn drawdown_curve(wealth: &[f64]) -> Vec<f64> {
    let mut peak = f64::MIN;
    wealth
        .iter()
        .map(|&w| {
            peak = peak.max(w);
            if peak > 0.0 {
                (peak - w) / peak
            } else {
                0.0
            }
        })
        .collect()
}

/// A bundled extended risk report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskReport {
    /// Annualised Sortino ratio (MAR 0).
    pub sortino: f64,
    /// Downside deviation of daily returns.
    pub downside_dev: f64,
    /// 95% historical value-at-risk (positive = loss).
    pub var95: f64,
    /// 95% expected shortfall (positive = loss).
    pub es95: f64,
    /// Average daily turnover.
    pub turnover: f64,
    /// Herfindahl concentration of the average portfolio.
    pub concentration: f64,
}

/// Computes the full report from a backtest's return and weight history.
pub fn risk_report(daily_returns: &[f64], weights: &[Vec<f64>]) -> RiskReport {
    RiskReport {
        sortino: sortino_ratio(daily_returns, 0.0),
        downside_dev: downside_deviation(daily_returns, 0.0),
        var95: value_at_risk(daily_returns, 0.95),
        es95: expected_shortfall(daily_returns, 0.95),
        turnover: average_turnover(weights),
        concentration: concentration(weights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downside_deviation_ignores_gains() {
        let up_only = [0.01, 0.02, 0.005];
        assert_eq!(downside_deviation(&up_only, 0.0), 0.0);
        let mixed = [0.01, -0.02, 0.01, -0.02];
        let dd = downside_deviation(&mixed, 0.0);
        assert!((dd - (0.0008f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sortino_positive_for_up_drift() {
        let rets = [0.01, -0.005, 0.012, -0.004, 0.011];
        assert!(sortino_ratio(&rets, 0.0) > 0.0);
    }

    #[test]
    fn sortino_zero_without_downside() {
        assert_eq!(sortino_ratio(&[0.01, 0.02, 0.03], 0.0), 0.0);
    }

    #[test]
    fn var_es_ordering_and_sign() {
        // 100 returns: one catastrophic day.
        let mut rets = vec![0.001f64; 99];
        rets.push(-0.30);
        let var = value_at_risk(&rets, 0.95);
        let es = expected_shortfall(&rets, 0.95);
        assert!(es >= var, "ES must dominate VaR: {es} vs {var}");
        assert!(es > 0.0);
    }

    #[test]
    fn var_of_all_gains_is_zero() {
        let rets = vec![0.01f64; 50];
        assert_eq!(value_at_risk(&rets, 0.95), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn var_rejects_bad_alpha() {
        let _ = value_at_risk(&[0.0], 0.3);
    }

    #[test]
    fn turnover_of_constant_weights_is_zero() {
        let w = vec![vec![0.5, 0.5]; 10];
        assert_eq!(average_turnover(&w), 0.0);
    }

    #[test]
    fn turnover_of_full_flip_is_two() {
        let w = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((average_turnover(&w) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_bounds() {
        let uniform = vec![vec![0.25; 4]; 5];
        assert!((concentration(&uniform) - 0.25).abs() < 1e-12);
        let single = vec![vec![1.0, 0.0, 0.0, 0.0]; 5];
        assert!((concentration(&single) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drawdown_curve_matches_known_path() {
        let w = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0];
        let dd = drawdown_curve(&w);
        assert_eq!(dd[0], 0.0);
        assert_eq!(dd[1], 0.0);
        assert!((dd[2] - 0.5).abs() < 1e-12);
        assert_eq!(dd[4], 0.0);
        assert!((dd[5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn risk_report_bundles() {
        let rets = [0.01, -0.02, 0.015, -0.01];
        let weights = vec![vec![0.6, 0.4], vec![0.5, 0.5], vec![0.7, 0.3]];
        let rep = risk_report(&rets, &weights);
        assert!(rep.var95 > 0.0);
        assert!(rep.turnover > 0.0);
        assert!(rep.concentration > 0.5 - 0.2);
    }
}
