//! Walk-forward evaluation: retrain-and-roll backtesting across
//! consecutive out-of-sample folds — the validation protocol serious
//! portfolio-management deployments use on top of the paper's single
//! train/test split.

use crate::backtest::{run_backtest, BacktestResult, Strategy};
use crate::env::EnvConfig;
use crate::metrics::{compute, Metrics};
use crate::panel::AssetPanel;
use cit_faults::FaultInjector;
use cit_telemetry::{Record, Telemetry};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Configuration of a walk-forward evaluation.
#[derive(Debug, Clone, Copy)]
pub struct WalkForwardConfig {
    /// Days of history available to the trainer in each fold.
    pub train_days: usize,
    /// Out-of-sample days traded per fold.
    pub test_days: usize,
    /// Environment settings shared by all folds.
    pub env: EnvConfig,
}

/// One fold's span: train on `[train_start, test_start)`, trade on
/// `[test_start, test_end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fold {
    /// First training day.
    pub train_start: usize,
    /// First traded day (= end of training data).
    pub test_start: usize,
    /// End of the traded span (exclusive).
    pub test_end: usize,
}

/// Enumerates the folds a panel supports under `cfg`, walking forward by
/// `test_days` each time.
pub fn folds(panel: &AssetPanel, cfg: &WalkForwardConfig) -> Vec<Fold> {
    let mut out = Vec::new();
    let mut test_start = cfg.train_days;
    while test_start + 2 <= panel.num_days() {
        let test_end = (test_start + cfg.test_days).min(panel.num_days());
        if test_end <= test_start + 1 {
            break;
        }
        out.push(Fold {
            train_start: test_start.saturating_sub(cfg.train_days),
            test_start,
            test_end,
        });
        test_start = test_end;
    }
    out
}

/// Result of a walk-forward run: the stitched out-of-sample wealth curve
/// and per-fold results.
pub struct WalkForwardResult {
    /// Wealth compounded across all folds (starts at 1.0).
    pub wealth: Vec<f64>,
    /// All out-of-sample daily returns in order.
    pub daily_returns: Vec<f64>,
    /// Metrics over the stitched curve.
    pub metrics: Metrics,
    /// Each fold's standalone result.
    pub fold_results: Vec<BacktestResult>,
}

/// Runs a walk-forward evaluation.
///
/// `make_strategy` is invoked once per fold with the panel and the fold
/// (so learned strategies can retrain on `[train_start, test_start)`);
/// the returned strategy then trades the fold's test span.
///
/// # Panics
/// Panics when the panel is too short for a single fold.
pub fn walk_forward(
    panel: &AssetPanel,
    cfg: &WalkForwardConfig,
    mut make_strategy: impl FnMut(&AssetPanel, &Fold) -> Box<dyn Strategy>,
) -> WalkForwardResult {
    let folds = folds(panel, cfg);
    assert!(
        !folds.is_empty(),
        "panel too short for walk-forward evaluation"
    );

    let mut wealth = vec![1.0f64];
    let mut daily = Vec::new();
    let mut fold_results = Vec::new();
    for fold in &folds {
        let mut strategy = make_strategy(panel, fold);
        let res = run_backtest(
            panel,
            cfg.env,
            fold.test_start,
            fold.test_end,
            strategy.as_mut(),
        );
        let scale = *wealth.last().expect("non-empty");
        wealth.extend(res.wealth.iter().skip(1).map(|w| w * scale));
        daily.extend_from_slice(&res.daily_returns);
        fold_results.push(res);
    }
    let metrics = compute(&wealth, &daily);
    WalkForwardResult {
        wealth,
        daily_returns: daily,
        metrics,
        fold_results,
    }
}

/// Errors raised by the fault-tolerant walk-forward runner.
#[derive(Debug)]
pub enum WalkForwardError {
    /// Underlying I/O failure while persisting or reading fold results.
    Io(std::io::Error),
    /// The panel is too short for a single fold under the configuration.
    Config(String),
}

impl std::fmt::Display for WalkForwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkForwardError::Io(e) => write!(f, "walk-forward io error: {e}"),
            WalkForwardError::Config(m) => write!(f, "walk-forward config error: {m}"),
        }
    }
}

impl std::error::Error for WalkForwardError {}

impl From<std::io::Error> for WalkForwardError {
    fn from(e: std::io::Error) -> Self {
        WalkForwardError::Io(e)
    }
}

const FOLD_HEADER: &str = "cit-fold v1";

/// Path of fold `i`'s persisted result under `dir`.
pub fn fold_result_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("fold_{i:04}.cit"))
}

fn write_series(out: &mut String, tag: &str, vals: &[f64]) {
    let _ = write!(out, "{tag}\t{}\t", vals.len());
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // `{:e}` is shortest-roundtrip, so reloaded folds stitch to the
        // bitwise-identical wealth curve an uninterrupted run produces.
        let _ = write!(out, "{v:e}");
    }
    out.push('\n');
}

fn fold_result_to_string(fold: &Fold, res: &BacktestResult) -> String {
    let mut out = String::new();
    out.push_str(FOLD_HEADER);
    out.push('\n');
    let _ = writeln!(
        out,
        "span\t{}\t{}\t{}",
        fold.train_start, fold.test_start, fold.test_end
    );
    let _ = writeln!(out, "name\t{}", res.name);
    write_series(&mut out, "wealth", &res.wealth);
    write_series(&mut out, "daily", &res.daily_returns);
    let cols = res.weights.first().map_or(0, Vec::len);
    let flat: Vec<f64> = res.weights.iter().flatten().copied().collect();
    let _ = write!(out, "weights\t{}\t{cols}\t", res.weights.len());
    for (i, v) in flat.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{v:e}");
    }
    out.push('\n');
    out
}

/// Parses a persisted fold result; `None` on any malformed/corrupt content
/// or when the recorded span mismatches `fold` (the fold is then re-run).
fn fold_result_from_string(fold: &Fold, text: &str) -> Option<BacktestResult> {
    let mut lines = text.lines();
    if lines.next()?.trim() != FOLD_HEADER {
        return None;
    }
    let mut name = String::new();
    let mut wealth: Option<Vec<f64>> = None;
    let mut daily: Option<Vec<f64>> = None;
    let mut weights: Option<Vec<Vec<f64>>> = None;
    let parse_vals = |s: &str, len: usize| -> Option<Vec<f64>> {
        let vs: Vec<f64> = s
            .split(' ')
            .filter(|p| !p.is_empty())
            .map(|p| p.parse::<f64>().ok().filter(|v| v.is_finite()))
            .collect::<Option<_>>()?;
        (vs.len() == len).then_some(vs)
    };
    for line in lines {
        let (tag, rest) = line.split_once('\t')?;
        match tag {
            "span" => {
                let mut f = rest.split('\t').map(|p| p.parse::<usize>().ok());
                let span = (f.next()??, f.next()??, f.next()??);
                if span != (fold.train_start, fold.test_start, fold.test_end) {
                    return None;
                }
            }
            "name" => name = rest.to_string(),
            "wealth" | "daily" => {
                let (len, vals) = rest.split_once('\t')?;
                let len: usize = len.parse().ok()?;
                let vs = parse_vals(vals, len)?;
                if tag == "wealth" {
                    wealth = Some(vs);
                } else {
                    daily = Some(vs);
                }
            }
            "weights" => {
                let mut f = rest.splitn(3, '\t');
                let rows: usize = f.next()?.parse().ok()?;
                let cols: usize = f.next()?.parse().ok()?;
                let flat = parse_vals(f.next()?, rows * cols)?;
                weights = Some(flat.chunks(cols.max(1)).map(<[f64]>::to_vec).collect());
            }
            _ => return None,
        }
    }
    let wealth = wealth?;
    let daily = daily?;
    // The test span t ∈ [test_start, test_end) realises test_end−test_start−1
    // returns; a mismatched curve means the file is stale or truncated.
    if wealth.len() != fold.test_end - fold.test_start || daily.len() + 1 != wealth.len() {
        return None;
    }
    let metrics = compute(&wealth, &daily);
    Some(BacktestResult {
        name,
        wealth,
        daily_returns: daily,
        weights: weights?,
        metrics,
    })
}

/// Crash-safe write of one fold result: temp file + fsync + rename, so an
/// interrupt mid-write never corrupts a previously completed fold.
fn write_fold_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Fault-tolerant [`walk_forward`]: every completed fold's out-of-sample
/// result is persisted (atomically) under `dir`, and a re-run after an
/// interruption loads those results instead of retraining — only folds
/// without a valid result file invoke `make_strategy`. Corrupt, truncated
/// or span-mismatched fold files are ignored and the fold is re-run.
///
/// Emits one `checkpoint.resume` record per skipped fold and one
/// `checkpoint.save` record per newly persisted fold on `telemetry`.
///
/// Restarted runs stitch to the bitwise-identical wealth curve an
/// uninterrupted run produces (fold files round-trip `f64` exactly), as
/// long as `make_strategy` is deterministic per fold.
pub fn walk_forward_resumable(
    panel: &AssetPanel,
    cfg: &WalkForwardConfig,
    dir: impl AsRef<Path>,
    telemetry: &Telemetry,
    make_strategy: impl FnMut(&AssetPanel, &Fold) -> Box<dyn Strategy>,
) -> Result<WalkForwardResult, WalkForwardError> {
    walk_forward_resumable_with(
        panel,
        cfg,
        dir,
        telemetry,
        &FaultInjector::disabled(),
        make_strategy,
    )
}

/// [`walk_forward_resumable`] with a fault-injection hook and non-fatal
/// fold persistence: a failed fold-result write (real, or injected at site
/// `fold.write`) no longer aborts the run — the fold's in-memory result is
/// used, a `checkpoint.error` record is emitted and the
/// `walkforward.write_errors` counter bumped; only the *resume* guarantee
/// degrades (that fold retrains on the next run).
pub fn walk_forward_resumable_with(
    panel: &AssetPanel,
    cfg: &WalkForwardConfig,
    dir: impl AsRef<Path>,
    telemetry: &Telemetry,
    faults: &FaultInjector,
    mut make_strategy: impl FnMut(&AssetPanel, &Fold) -> Box<dyn Strategy>,
) -> Result<WalkForwardResult, WalkForwardError> {
    let dir = dir.as_ref();
    let folds = folds(panel, cfg);
    if folds.is_empty() {
        return Err(WalkForwardError::Config(
            "panel too short for walk-forward evaluation".into(),
        ));
    }
    std::fs::create_dir_all(dir)?;

    let mut wealth = vec![1.0f64];
    let mut daily = Vec::new();
    let mut fold_results = Vec::new();
    for (i, fold) in folds.iter().enumerate() {
        let path = fold_result_path(dir, i);
        let cached = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| fold_result_from_string(fold, &text));
        let res = match cached {
            Some(res) => {
                telemetry.emit(
                    Record::new("checkpoint.resume")
                        .with("scope", "walkforward")
                        .with("fold", i)
                        .with("test_start", fold.test_start)
                        .with("path", path.display().to_string()),
                );
                res
            }
            None => {
                let mut strategy = make_strategy(panel, fold);
                let res = run_backtest(
                    panel,
                    cfg.env,
                    fold.test_start,
                    fold.test_end,
                    strategy.as_mut(),
                );
                let write_result = match faults.io_error("fold.write") {
                    Some(e) => Err(e),
                    None => write_fold_atomic(&path, &fold_result_to_string(fold, &res)),
                };
                match write_result {
                    Ok(()) => telemetry.emit(
                        Record::new("checkpoint.save")
                            .with("scope", "walkforward")
                            .with("fold", i)
                            .with("test_start", fold.test_start)
                            .with("path", path.display().to_string()),
                    ),
                    Err(e) => {
                        telemetry.emit(
                            Record::new("checkpoint.error")
                                .with("scope", "walkforward")
                                .with("fold", i)
                                .with("path", path.display().to_string())
                                .with("error", e.to_string()),
                        );
                        telemetry.counter("walkforward.write_errors").inc();
                    }
                }
                res
            }
        };
        let scale = *wealth.last().expect("non-empty");
        wealth.extend(res.wealth.iter().skip(1).map(|w| w * scale));
        daily.extend_from_slice(&res.daily_returns);
        fold_results.push(res);
    }
    let metrics = compute(&wealth, &daily);
    Ok(WalkForwardResult {
        wealth,
        daily_returns: daily,
        metrics,
        fold_results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtest::UniformStrategy;
    use crate::synth::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 400,
            test_start: 300,
            ..Default::default()
        }
        .generate()
    }

    fn cfg() -> WalkForwardConfig {
        WalkForwardConfig {
            train_days: 100,
            test_days: 50,
            env: EnvConfig {
                window: 16,
                transaction_cost: 0.0,
            },
        }
    }

    #[test]
    fn folds_tile_the_panel() {
        let p = panel();
        let fs = folds(&p, &cfg());
        assert_eq!(fs.len(), 6); // (400-100)/50
        assert_eq!(fs[0].test_start, 100);
        for w in fs.windows(2) {
            assert_eq!(w[0].test_end, w[1].test_start, "folds must be contiguous");
        }
        assert_eq!(fs.last().expect("folds").test_end, 400);
    }

    #[test]
    fn stitched_wealth_compounds_folds() {
        let p = panel();
        let res = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));
        // Stitched length: 1 + Σ (fold lengths − 1)
        let expected: usize = 1 + res
            .fold_results
            .iter()
            .map(|r| r.wealth.len() - 1)
            .sum::<usize>();
        assert_eq!(res.wealth.len(), expected);
        // Final wealth = product of fold finals.
        let product: f64 = res
            .fold_results
            .iter()
            .map(|r| r.wealth.last().expect("curve"))
            .product();
        assert!((res.wealth.last().expect("curve") - product).abs() < 1e-9);
    }

    #[test]
    fn daily_returns_consistent_with_wealth() {
        let p = panel();
        let res = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));
        let mut w = 1.0;
        for (i, r) in res.daily_returns.iter().enumerate() {
            w *= 1.0 + r;
            assert!((w - res.wealth[i + 1]).abs() < 1e-9);
        }
    }

    #[test]
    fn strategy_factory_sees_each_fold() {
        let p = panel();
        let mut seen = Vec::new();
        let _ = walk_forward(&p, &cfg(), |_, fold| {
            seen.push(*fold);
            Box::new(UniformStrategy)
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.iter().all(|f| f.test_start - f.train_start <= 100));
    }

    #[test]
    fn resumable_matches_straight_run_and_skips_completed_folds() {
        let p = panel();
        let dir = std::env::temp_dir().join("cit_wf_resume_test");
        let _ = std::fs::remove_dir_all(&dir);
        let straight = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));

        // First (uninterrupted) resumable run: every fold trains.
        let (tel, sink) = Telemetry::memory();
        let mut trained = 0usize;
        let res = walk_forward_resumable(&p, &cfg(), &dir, &tel, |_, _| {
            trained += 1;
            Box::new(UniformStrategy)
        })
        .expect("resumable run");
        assert_eq!(trained, 6);
        assert_eq!(sink.by_kind("checkpoint.save").len(), 6);
        assert_eq!(
            res.wealth, straight.wealth,
            "stitched curve must be bitwise equal"
        );

        // Second run: all folds cached, the factory must never fire.
        let (tel2, sink2) = Telemetry::memory();
        let resumed = walk_forward_resumable(&p, &cfg(), &dir, &tel2, |_, fold| {
            panic!("fold {fold:?} re-ran despite a valid result file")
        })
        .expect("resumed run");
        assert_eq!(sink2.by_kind("checkpoint.resume").len(), 6);
        assert_eq!(resumed.wealth, straight.wealth);
        assert_eq!(resumed.daily_returns, straight.daily_returns);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_reruns_corrupt_or_missing_folds_only() {
        let p = panel();
        let dir = std::env::temp_dir().join("cit_wf_corrupt_test");
        let _ = std::fs::remove_dir_all(&dir);
        let straight = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));
        let tel = Telemetry::disabled();
        walk_forward_resumable(&p, &cfg(), &dir, &tel, |_, _| Box::new(UniformStrategy))
            .expect("initial run");

        // Simulate an interrupted run: fold 2 truncated mid-write, fold 4
        // never completed, plus a stray crashed temp file.
        std::fs::write(fold_result_path(&dir, 2), "cit-fold v1\nspan\t0").expect("corrupt");
        std::fs::remove_file(fold_result_path(&dir, 4)).expect("remove");
        let mut tmp = fold_result_path(&dir, 4).into_os_string();
        tmp.push(".tmp");
        std::fs::write(&tmp, "cit-fold v1\nwea").expect("stray tmp");

        let mut reran = Vec::new();
        let res = walk_forward_resumable(&p, &cfg(), &dir, &tel, |_, fold| {
            reran.push(fold.test_start);
            Box::new(UniformStrategy)
        })
        .expect("recovery run");
        assert_eq!(
            reran.len(),
            2,
            "exactly the invalid folds re-ran: {reran:?}"
        );
        assert_eq!(res.wealth, straight.wealth);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fold_write_failure_is_nonfatal_and_fold_reruns_next_time() {
        use cit_faults::FaultPlan;
        let p = panel();
        let dir = std::env::temp_dir().join("cit_wf_faulty_write_test");
        let _ = std::fs::remove_dir_all(&dir);
        let straight = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));

        // Fail the 3rd fold-result write.
        let plan =
            FaultPlan::parse("cit-faults v1\nseed 7\nio fold.write 3 denied\n").expect("plan");
        let (tel, sink) = Telemetry::memory();
        let res = walk_forward_resumable_with(
            &p,
            &cfg(),
            &dir,
            &tel,
            &FaultInjector::new(plan),
            |_, _| Box::new(UniformStrategy),
        )
        .expect("run survives the failed write");
        assert_eq!(res.wealth, straight.wealth, "result unaffected");
        assert_eq!(sink.by_kind("checkpoint.error").len(), 1);
        assert_eq!(tel.counter("walkforward.write_errors").get(), 1);
        assert!(
            !fold_result_path(&dir, 2).exists(),
            "failed write left no file"
        );

        // Next run: only the unsaved fold retrains.
        let mut reran = Vec::new();
        let resumed = walk_forward_resumable(&p, &cfg(), &dir, &Telemetry::disabled(), |_, f| {
            reran.push(f.test_start);
            Box::new(UniformStrategy)
        })
        .expect("resume");
        assert_eq!(reran.len(), 1);
        assert_eq!(resumed.wealth, straight.wealth);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_too_short_panel_errors_typed() {
        let p = SynthConfig {
            num_assets: 2,
            num_days: 50,
            test_start: 40,
            ..Default::default()
        }
        .generate();
        let bad = WalkForwardConfig {
            train_days: 60,
            test_days: 20,
            env: EnvConfig::default(),
        };
        let dir = std::env::temp_dir().join("cit_wf_short_test");
        let err = walk_forward_resumable(&p, &bad, &dir, &Telemetry::disabled(), |_, _| {
            Box::new(UniformStrategy)
        });
        assert!(matches!(err, Err(WalkForwardError::Config(_))));
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_panel_panics() {
        let p = SynthConfig {
            num_assets: 2,
            num_days: 50,
            test_start: 40,
            ..Default::default()
        }
        .generate();
        let bad = WalkForwardConfig {
            train_days: 60,
            test_days: 20,
            env: EnvConfig::default(),
        };
        let _ = walk_forward(&p, &bad, |_, _| Box::new(UniformStrategy));
    }
}
