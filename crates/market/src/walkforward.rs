//! Walk-forward evaluation: retrain-and-roll backtesting across
//! consecutive out-of-sample folds — the validation protocol serious
//! portfolio-management deployments use on top of the paper's single
//! train/test split.

use crate::backtest::{run_backtest, BacktestResult, Strategy};
use crate::env::EnvConfig;
use crate::metrics::{compute, Metrics};
use crate::panel::AssetPanel;

/// Configuration of a walk-forward evaluation.
#[derive(Debug, Clone, Copy)]
pub struct WalkForwardConfig {
    /// Days of history available to the trainer in each fold.
    pub train_days: usize,
    /// Out-of-sample days traded per fold.
    pub test_days: usize,
    /// Environment settings shared by all folds.
    pub env: EnvConfig,
}

/// One fold's span: train on `[train_start, test_start)`, trade on
/// `[test_start, test_end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fold {
    /// First training day.
    pub train_start: usize,
    /// First traded day (= end of training data).
    pub test_start: usize,
    /// End of the traded span (exclusive).
    pub test_end: usize,
}

/// Enumerates the folds a panel supports under `cfg`, walking forward by
/// `test_days` each time.
pub fn folds(panel: &AssetPanel, cfg: &WalkForwardConfig) -> Vec<Fold> {
    let mut out = Vec::new();
    let mut test_start = cfg.train_days;
    while test_start + 2 <= panel.num_days() {
        let test_end = (test_start + cfg.test_days).min(panel.num_days());
        if test_end <= test_start + 1 {
            break;
        }
        out.push(Fold {
            train_start: test_start.saturating_sub(cfg.train_days),
            test_start,
            test_end,
        });
        test_start = test_end;
    }
    out
}

/// Result of a walk-forward run: the stitched out-of-sample wealth curve
/// and per-fold results.
pub struct WalkForwardResult {
    /// Wealth compounded across all folds (starts at 1.0).
    pub wealth: Vec<f64>,
    /// All out-of-sample daily returns in order.
    pub daily_returns: Vec<f64>,
    /// Metrics over the stitched curve.
    pub metrics: Metrics,
    /// Each fold's standalone result.
    pub fold_results: Vec<BacktestResult>,
}

/// Runs a walk-forward evaluation.
///
/// `make_strategy` is invoked once per fold with the panel and the fold
/// (so learned strategies can retrain on `[train_start, test_start)`);
/// the returned strategy then trades the fold's test span.
///
/// # Panics
/// Panics when the panel is too short for a single fold.
pub fn walk_forward(
    panel: &AssetPanel,
    cfg: &WalkForwardConfig,
    mut make_strategy: impl FnMut(&AssetPanel, &Fold) -> Box<dyn Strategy>,
) -> WalkForwardResult {
    let folds = folds(panel, cfg);
    assert!(
        !folds.is_empty(),
        "panel too short for walk-forward evaluation"
    );

    let mut wealth = vec![1.0f64];
    let mut daily = Vec::new();
    let mut fold_results = Vec::new();
    for fold in &folds {
        let mut strategy = make_strategy(panel, fold);
        let res = run_backtest(
            panel,
            cfg.env,
            fold.test_start,
            fold.test_end,
            strategy.as_mut(),
        );
        let scale = *wealth.last().expect("non-empty");
        wealth.extend(res.wealth.iter().skip(1).map(|w| w * scale));
        daily.extend_from_slice(&res.daily_returns);
        fold_results.push(res);
    }
    let metrics = compute(&wealth, &daily);
    WalkForwardResult {
        wealth,
        daily_returns: daily,
        metrics,
        fold_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtest::UniformStrategy;
    use crate::synth::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 400,
            test_start: 300,
            ..Default::default()
        }
        .generate()
    }

    fn cfg() -> WalkForwardConfig {
        WalkForwardConfig {
            train_days: 100,
            test_days: 50,
            env: EnvConfig {
                window: 16,
                transaction_cost: 0.0,
            },
        }
    }

    #[test]
    fn folds_tile_the_panel() {
        let p = panel();
        let fs = folds(&p, &cfg());
        assert_eq!(fs.len(), 6); // (400-100)/50
        assert_eq!(fs[0].test_start, 100);
        for w in fs.windows(2) {
            assert_eq!(w[0].test_end, w[1].test_start, "folds must be contiguous");
        }
        assert_eq!(fs.last().expect("folds").test_end, 400);
    }

    #[test]
    fn stitched_wealth_compounds_folds() {
        let p = panel();
        let res = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));
        // Stitched length: 1 + Σ (fold lengths − 1)
        let expected: usize = 1 + res
            .fold_results
            .iter()
            .map(|r| r.wealth.len() - 1)
            .sum::<usize>();
        assert_eq!(res.wealth.len(), expected);
        // Final wealth = product of fold finals.
        let product: f64 = res
            .fold_results
            .iter()
            .map(|r| r.wealth.last().expect("curve"))
            .product();
        assert!((res.wealth.last().expect("curve") - product).abs() < 1e-9);
    }

    #[test]
    fn daily_returns_consistent_with_wealth() {
        let p = panel();
        let res = walk_forward(&p, &cfg(), |_, _| Box::new(UniformStrategy));
        let mut w = 1.0;
        for (i, r) in res.daily_returns.iter().enumerate() {
            w *= 1.0 + r;
            assert!((w - res.wealth[i + 1]).abs() < 1e-9);
        }
    }

    #[test]
    fn strategy_factory_sees_each_fold() {
        let p = panel();
        let mut seen = Vec::new();
        let _ = walk_forward(&p, &cfg(), |_, fold| {
            seen.push(*fold);
            Box::new(UniformStrategy)
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.iter().all(|f| f.test_start - f.train_start <= 100));
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_panel_panics() {
        let p = SynthConfig {
            num_assets: 2,
            num_days: 50,
            test_start: 40,
            ..Default::default()
        }
        .generate();
        let bad = WalkForwardConfig {
            train_days: 60,
            test_days: 20,
            env: EnvConfig::default(),
        };
        let _ = walk_forward(&p, &bad, |_, _| Box::new(UniformStrategy));
    }
}
