//! Minimal CSV import/export so real market data (e.g. Yahoo-Finance
//! exports) can replace the synthetic generator, and experiment outputs
//! (equity curves, per-day series for the paper's figures) can be saved.

use crate::panel::{AssetPanel, NUM_FEATURES};
use crate::quality::RawPanel;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Errors raised by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the CSV content.
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Serialises a panel to CSV with header
/// `day,asset,open,high,low,close` (long format).
pub fn panel_to_csv(panel: &AssetPanel) -> String {
    let mut out = String::with_capacity(panel.num_days() * panel.num_assets() * 32);
    out.push_str("day,asset,open,high,low,close\n");
    for t in 0..panel.num_days() {
        for i in 0..panel.num_assets() {
            let _ = writeln!(
                out,
                "{t},{},{:.6},{:.6},{:.6},{:.6}",
                panel.asset_names()[i],
                panel.price(t, i, crate::panel::Feature::Open),
                panel.price(t, i, crate::panel::Feature::High),
                panel.price(t, i, crate::panel::Feature::Low),
                panel.price(t, i, crate::panel::Feature::Close),
            );
        }
    }
    out
}

/// Parses the long-format CSV produced by [`panel_to_csv`].
///
/// Days must be contiguous from 0 and every day must list the same assets
/// in the same order.
pub fn panel_from_csv(name: &str, csv: &str, test_start: usize) -> Result<AssetPanel, CsvError> {
    let mut lines = csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    if header.trim() != "day,asset,open,high,low,close" {
        return Err(CsvError::Malformed(format!("unexpected header: {header}")));
    }
    let mut rows: Vec<(usize, String, [f64; 4])> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return Err(CsvError::Malformed(format!(
                "line {}: expected 6 fields",
                lineno + 2
            )));
        }
        let day: usize = parts[0]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("line {}: bad day", lineno + 2)))?;
        let mut vals = [0.0f64; 4];
        for (k, v) in parts[2..].iter().enumerate() {
            vals[k] = v
                .parse()
                .map_err(|_| CsvError::Malformed(format!("line {}: bad price", lineno + 2)))?;
        }
        rows.push((day, parts[1].to_string(), vals));
    }
    if rows.is_empty() {
        return Err(CsvError::Malformed("no data rows".into()));
    }
    let num_days = rows.iter().map(|r| r.0).max().expect("non-empty") + 1;
    let assets: Vec<String> = {
        let mut seen = Vec::new();
        for r in rows.iter().filter(|r| r.0 == 0) {
            seen.push(r.1.clone());
        }
        seen
    };
    let m = assets.len();
    if m == 0 {
        return Err(CsvError::Malformed("no assets on day 0".into()));
    }
    if rows.len() != num_days * m {
        return Err(CsvError::Malformed(format!(
            "expected {} rows ({} days × {} assets), found {}",
            num_days * m,
            num_days,
            m,
            rows.len()
        )));
    }
    let mut data = vec![0.0f64; num_days * m * NUM_FEATURES];
    for (day, asset, vals) in rows {
        let i = assets
            .iter()
            .position(|a| *a == asset)
            .ok_or_else(|| CsvError::Malformed(format!("asset {asset} missing from day 0")))?;
        let idx = (day * m + i) * NUM_FEATURES;
        data[idx..idx + 4].copy_from_slice(&vals);
    }
    let mut panel = AssetPanel::new(name, num_days, m, data, test_start);
    panel.set_asset_names(assets);
    Ok(panel)
}

/// Lenient variant of [`panel_from_csv`] for real-world feeds: instead of
/// erroring on dirty content it produces a [`RawPanel`] to be diagnosed and
/// repaired by [`crate::quality`].
///
/// - unparsable prices become NaN (missing cells),
/// - absent `(day, asset)` rows stay NaN,
/// - a day re-stated by a later row wins (last write) and the day is
///   recorded in [`RawPanel::duplicate_days`],
/// - only structural problems (bad header, bad day/asset fields, no rows)
///   are errors.
pub fn raw_panel_from_csv(name: &str, csv: &str, test_start: usize) -> Result<RawPanel, CsvError> {
    let mut lines = csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    if header.trim() != "day,asset,open,high,low,close" {
        return Err(CsvError::Malformed(format!("unexpected header: {header}")));
    }
    let mut rows: Vec<(usize, String, [f64; 4])> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return Err(CsvError::Malformed(format!(
                "line {}: expected 6 fields",
                lineno + 2
            )));
        }
        let day: usize = parts[0]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("line {}: bad day", lineno + 2)))?;
        let mut vals = [f64::NAN; 4];
        for (k, v) in parts[2..].iter().enumerate() {
            // Unparsable price -> NaN, left for quality repair.
            vals[k] = v.trim().parse().unwrap_or(f64::NAN);
        }
        rows.push((day, parts[1].to_string(), vals));
    }
    if rows.is_empty() {
        return Err(CsvError::Malformed("no data rows".into()));
    }
    let num_days = rows.iter().map(|r| r.0).max().expect("non-empty") + 1;
    let assets: Vec<String> = {
        let mut seen: Vec<String> = Vec::new();
        for (_, asset, _) in &rows {
            if !seen.contains(asset) {
                seen.push(asset.clone());
            }
        }
        seen
    };
    let m = assets.len();
    let mut raw = RawPanel::empty(name, num_days, m);
    raw.test_start = test_start.min(num_days.saturating_sub(1));
    raw.asset_names = assets.clone();
    let mut filled = vec![false; num_days * m];
    let mut duplicates: Vec<usize> = Vec::new();
    for (day, asset, vals) in rows {
        let i = assets.iter().position(|a| *a == asset).expect("seen above");
        if filled[day * m + i] && !duplicates.contains(&day) {
            duplicates.push(day);
        }
        filled[day * m + i] = true;
        let idx = (day * m + i) * NUM_FEATURES;
        raw.data[idx..idx + 4].copy_from_slice(&vals);
    }
    duplicates.sort_unstable();
    raw.duplicate_days = duplicates;
    Ok(raw)
}

/// Writes labelled series (e.g. equity curves for the paper's figures) as a
/// wide CSV: first column `day`, one column per series. Series are padded
/// with empty cells when lengths differ.
pub fn series_to_csv(series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str("day");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for t in 0..max_len {
        let _ = write!(out, "{t}");
        for (_, s) in series {
            match s.get(t) {
                Some(v) => {
                    let _ = write!(out, ",{v:.6}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Saves a string to a file, creating parent directories.
pub fn save(path: impl AsRef<Path>, content: &str) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn panel_csv_roundtrip() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 10,
            test_start: 7,
            ..Default::default()
        }
        .generate();
        let csv = panel_to_csv(&p);
        let back = panel_from_csv("rt", &csv, 7).expect("roundtrip parse");
        assert_eq!(back.num_days(), 10);
        assert_eq!(back.num_assets(), 3);
        for t in 0..10 {
            for i in 0..3 {
                assert!((back.close(t, i) - p.close(t, i)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            panel_from_csv("x", "a,b,c\n", 0),
            Err(CsvError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_missing_rows() {
        let csv = "day,asset,open,high,low,close\n0,A,1,1,1,1\n1,A,1,1,1,1\n1,B,1,1,1,1\n";
        assert!(matches!(
            panel_from_csv("x", csv, 0),
            Err(CsvError::Malformed(_))
        ));
    }

    #[test]
    fn raw_parse_tolerates_dirty_feeds() {
        use crate::quality::{QualityConfig, RepairPolicy};
        let csv = "day,asset,open,high,low,close\n\
                   0,A,1,1,1,1\n0,B,2,2,2,2\n\
                   1,A,1,1,1,oops\n\
                   1,B,2,2,2,2\n\
                   2,A,1,1,1,1\n\
                   2,B,2,2,2,2\n\
                   2,B,3,3,3,3\n";
        let raw = raw_panel_from_csv("dirty", csv, 2).expect("lenient parse");
        assert_eq!(raw.num_days, 3);
        assert_eq!(raw.num_assets, 2);
        // Unparsable close -> NaN.
        assert!(raw.data[raw.num_assets * NUM_FEATURES + 3].is_nan());
        // Re-stated day 2 for B: last write wins, day recorded.
        assert_eq!(raw.duplicate_days, vec![2]);
        assert_eq!(raw.data[(2 * raw.num_assets + 1) * NUM_FEATURES + 3], 3.0);
        let (panel, report) = raw
            .repair(
                RepairPolicy::ForwardFill,
                &QualityConfig::default(),
                &cit_telemetry::Telemetry::disabled(),
            )
            .expect("repairable");
        assert_eq!(report.repaired_cells, 1);
        assert_eq!(panel.close(1, 0), 1.0);
    }

    #[test]
    fn raw_parse_marks_absent_rows_missing() {
        let csv = "day,asset,open,high,low,close\n0,A,1,1,1,1\n0,B,2,2,2,2\n1,B,2,2,2,2\n";
        let raw = raw_panel_from_csv("gap", csv, 1).expect("lenient parse");
        // Day 1 row for A was never listed: all four features NaN.
        for f in 0..NUM_FEATURES {
            assert!(raw.data[raw.num_assets * NUM_FEATURES + f].is_nan());
        }
    }

    #[test]
    fn series_csv_pads_unequal_lengths() {
        let csv = series_to_csv(&[
            ("a".to_string(), vec![1.0, 2.0]),
            ("b".to_string(), vec![1.0]),
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "day,a,b");
        assert!(
            lines[2].ends_with(','),
            "missing value should be empty cell: {}",
            lines[2]
        );
    }
}
