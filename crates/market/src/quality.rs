//! Market-data validation and repair.
//!
//! Real feeds deliver what synthetic generators never do: NaN cells,
//! zero/negative prices, missing rows, duplicated dates, fat-fingered
//! outlier returns and too-short histories. [`AssetPanel`] refuses to hold
//! any of that — its constructor rejects non-positive and non-finite
//! prices — so dirty data enters through a [`RawPanel`] (NaN = missing),
//! is diagnosed into a [`DataQualityReport`], and is made clean by a
//! configurable [`RepairPolicy`] before a `PortfolioEnv` can ever see it.
//! Every repair is counted in the report and mirrored to telemetry
//! (`quality.report` records, `quality.repairs.*` counters).
//!
//! The [`cit_faults::FaultInjector`] hooks in [`RawPanel::apply_faults`]
//! let chaos tests corrupt, drop, scale, truncate or delay panel rows
//! deterministically from a fault plan.

use crate::panel::{AssetPanel, Feature, NUM_FEATURES};
use cit_faults::{Fault, FaultInjector};
use cit_telemetry::{Record, Telemetry};
use std::collections::BTreeSet;

/// Thresholds used by [`RawPanel::validate`].
#[derive(Debug, Clone, Copy)]
pub struct QualityConfig {
    /// A close-to-close return with `|r| >` this is an outlier (critical).
    pub max_abs_return: f64,
    /// Panels shorter than this many days get a `ShortHistory` warning.
    pub min_history: usize,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            max_abs_return: 0.5,
            min_history: 32,
        }
    }
}

/// The kind of a data-quality [`Issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IssueKind {
    /// NaN or infinite price cell (critical).
    NonFinitePrice,
    /// Zero or negative price cell (critical).
    NonPositivePrice,
    /// All features of a (day, asset) row are missing (critical).
    MissingRow,
    /// Close-to-close return beyond the configured bound (critical).
    OutlierReturn,
    /// A later row re-stated an existing day (warning; last write wins).
    DuplicateRow,
    /// Finite `high < low` on one day (warning).
    InvertedRange,
    /// The whole panel is shorter than `min_history` days (warning).
    ShortHistory,
}

impl IssueKind {
    /// Critical issues make the panel unusable without repair; warnings
    /// are recorded but do not block construction.
    pub fn is_critical(self) -> bool {
        matches!(
            self,
            IssueKind::NonFinitePrice
                | IssueKind::NonPositivePrice
                | IssueKind::MissingRow
                | IssueKind::OutlierReturn
        )
    }

    /// Stable lowercase label (telemetry keys, summaries).
    pub fn label(self) -> &'static str {
        match self {
            IssueKind::NonFinitePrice => "non_finite_price",
            IssueKind::NonPositivePrice => "non_positive_price",
            IssueKind::MissingRow => "missing_row",
            IssueKind::OutlierReturn => "outlier_return",
            IssueKind::DuplicateRow => "duplicate_row",
            IssueKind::InvertedRange => "inverted_range",
            IssueKind::ShortHistory => "short_history",
        }
    }

    /// All kinds, in severity order (criticals first).
    pub fn all() -> [IssueKind; 7] {
        [
            IssueKind::NonFinitePrice,
            IssueKind::NonPositivePrice,
            IssueKind::MissingRow,
            IssueKind::OutlierReturn,
            IssueKind::DuplicateRow,
            IssueKind::InvertedRange,
            IssueKind::ShortHistory,
        ]
    }
}

/// One located data-quality problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// What is wrong.
    pub kind: IssueKind,
    /// Day index the issue was found at.
    pub day: usize,
    /// Asset index, when the issue is asset-specific (`None` for
    /// panel-level issues like `ShortHistory` / `DuplicateRow`).
    pub asset: Option<usize>,
}

/// Maximum example issues retained per kind (counts are always complete).
const MAX_EXAMPLES: usize = 16;

/// The diagnosis of one panel: complete per-kind counts, capped example
/// locations, and — after [`RawPanel::repair`] — what the repair did.
#[derive(Debug, Clone, Default)]
pub struct DataQualityReport {
    /// Panel label the report describes.
    pub panel: String,
    /// `(kind, count)` for every kind with at least one occurrence.
    pub counts: Vec<(IssueKind, usize)>,
    /// Up to `MAX_EXAMPLES` (16) located examples per kind.
    pub examples: Vec<Issue>,
    /// Asset names (for naming offenders in errors and summaries).
    pub asset_names: Vec<String>,
    /// Cells rewritten by forward/backward filling.
    pub repaired_cells: usize,
    /// Close returns clamped to the configured bound.
    pub clamped_returns: usize,
    /// Assets dropped by [`RepairPolicy::DropAssets`].
    pub dropped_assets: Vec<String>,
}

impl DataQualityReport {
    /// Occurrences of one issue kind.
    pub fn count(&self, kind: IssueKind) -> usize {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, c)| *c)
    }

    /// Total critical-issue occurrences.
    pub fn critical_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|(k, _)| k.is_critical())
            .map(|(_, c)| c)
            .sum()
    }

    /// `true` when at least one critical issue was found.
    pub fn has_critical(&self) -> bool {
        self.critical_count() > 0
    }

    /// Names of assets carrying at least one critical issue, sorted.
    pub fn offending_assets(&self) -> Vec<String> {
        let idx: BTreeSet<usize> = self
            .examples
            .iter()
            .filter(|i| i.kind.is_critical())
            .filter_map(|i| i.asset)
            .collect();
        idx.iter()
            .map(|&i| {
                self.asset_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("A{i:03}"))
            })
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.counts.is_empty() {
            return format!("{}: clean", self.panel);
        }
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, c)| format!("{}={c}", k.label()))
            .collect();
        format!("{}: {}", self.panel, parts.join(" "))
    }

    /// Emits the report as a `quality.report` telemetry record (counts
    /// only — never raw prices, so the record is always valid JSON).
    pub fn emit(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        let mut rec = Record::new("quality.report")
            .with("panel", self.panel.clone())
            .with("critical", self.critical_count())
            .with("repaired_cells", self.repaired_cells)
            .with("clamped_returns", self.clamped_returns)
            .with("dropped_assets", self.dropped_assets.len());
        for (kind, count) in &self.counts {
            rec = rec.with(kind.label(), *count);
        }
        telemetry.emit(rec);
    }
}

/// How [`RawPanel::repair`] makes a dirty panel usable.
///
/// ```
/// use cit_market::{IssueKind, RawPanel, RepairPolicy, QualityConfig, SynthConfig};
/// use cit_telemetry::Telemetry;
///
/// // Dirty a clean synthetic panel: asset 1 loses its day-5 row.
/// let clean = SynthConfig { num_assets: 2, num_days: 64, test_start: 48, ..Default::default() }
///     .generate();
/// let mut raw = RawPanel::from_panel(&clean);
/// for f in 0..4 {
///     raw.data[(5 * raw.num_assets + 1) * 4 + f] = f64::NAN; // [T, m, 4] row-major
/// }
///
/// let cfg = QualityConfig::default();
/// assert_eq!(raw.validate(&cfg).count(IssueKind::MissingRow), 1);
/// // `Reject` refuses critical issues; `ForwardFill` carries day 4 forward.
/// assert!(raw.repair(RepairPolicy::Reject, &cfg, &Telemetry::disabled()).is_err());
/// let (panel, report) = raw
///     .repair(RepairPolicy::ForwardFill, &cfg, &Telemetry::disabled())
///     .unwrap();
/// assert_eq!(panel.close(5, 1), panel.close(4, 1));
/// assert_eq!(report.repaired_cells, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Refuse to repair: any critical issue is an error.
    Reject,
    /// Rewrite missing/invalid cells from the most recent valid value of
    /// the same asset and feature (leading gaps back-fill from the first
    /// valid value).
    ForwardFill,
    /// Remove every asset that carries a critical issue.
    DropAssets,
    /// [`RepairPolicy::ForwardFill`], then clamp outlier close-to-close
    /// returns to `±max_abs_return` (O/H/L scale with the close).
    ClampReturns,
}

/// Why a repair could not produce a usable panel.
#[derive(Debug)]
pub enum QualityError {
    /// [`RepairPolicy::Reject`] and the panel has critical issues.
    Rejected(Box<DataQualityReport>),
    /// The chosen policy cannot fix this panel (e.g. an asset with no
    /// valid value at all, or every asset dropped).
    Unrepairable(String),
}

impl std::fmt::Display for QualityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QualityError::Rejected(r) => write!(
                f,
                "panel rejected: {} critical issue(s) [{}] (offending assets: {})",
                r.critical_count(),
                r.summary(),
                r.offending_assets().join(", ")
            ),
            QualityError::Unrepairable(m) => write!(f, "panel unrepairable: {m}"),
        }
    }
}

impl std::error::Error for QualityError {}

/// A possibly-dirty panel: same `[T, m, d]` layout as [`AssetPanel`] but
/// cells may be NaN (missing), zero, negative or infinite. The only way
/// from here to an [`AssetPanel`] is [`RawPanel::repair`].
#[derive(Debug, Clone)]
pub struct RawPanel {
    /// Panel label.
    pub name: String,
    /// Number of days `T`.
    pub num_days: usize,
    /// Number of assets `m`.
    pub num_assets: usize,
    /// Row-major `[T, m, d]`; NaN marks a missing cell.
    pub data: Vec<f64>,
    /// First day of the test period.
    pub test_start: usize,
    /// Asset names (defaulted to `A000…` when unknown).
    pub asset_names: Vec<String>,
    /// Days that were re-stated by a later row at ingestion
    /// (`DuplicateRow` warnings; last write won).
    pub duplicate_days: Vec<usize>,
}

impl RawPanel {
    /// An all-missing raw panel to be filled by an ingester.
    pub fn empty(name: impl Into<String>, num_days: usize, num_assets: usize) -> Self {
        RawPanel {
            name: name.into(),
            num_days,
            num_assets,
            data: vec![f64::NAN; num_days * num_assets * NUM_FEATURES],
            test_start: num_days.saturating_sub(1),
            asset_names: (0..num_assets).map(|i| format!("A{i:03}")).collect(),
            duplicate_days: Vec::new(),
        }
    }

    /// Copies a clean panel into raw form (for tests that then dirty it).
    pub fn from_panel(panel: &AssetPanel) -> Self {
        let mut data = Vec::with_capacity(panel.num_days() * panel.num_assets() * NUM_FEATURES);
        for t in 0..panel.num_days() {
            for i in 0..panel.num_assets() {
                for f in [Feature::Open, Feature::High, Feature::Low, Feature::Close] {
                    data.push(panel.price(t, i, f));
                }
            }
        }
        RawPanel {
            name: panel.name().to_string(),
            num_days: panel.num_days(),
            num_assets: panel.num_assets(),
            data,
            test_start: panel.test_start(),
            asset_names: panel.asset_names().to_vec(),
            duplicate_days: Vec::new(),
        }
    }

    #[inline]
    fn idx(&self, t: usize, i: usize, f: usize) -> usize {
        (t * self.num_assets + i) * NUM_FEATURES + f
    }

    /// Applies the market faults of an active plan: corrupted/missing
    /// rows, outlier scaling, truncated and delayed reads. A disabled
    /// injector is a no-op; each fault fires once per plan.
    pub fn apply_faults(&mut self, faults: &FaultInjector) {
        if !faults.is_enabled() {
            return;
        }
        if let Some(delay) = faults.read_delay() {
            std::thread::sleep(delay);
        }
        if let Some(days) = faults.truncate_read() {
            if days >= 2 && days < self.num_days {
                self.num_days = days;
                self.data.truncate(days * self.num_assets * NUM_FEATURES);
                self.test_start = self.test_start.min(days - 1);
                self.duplicate_days.retain(|&d| d < days);
            }
        }
        for fault in faults.market_faults() {
            match fault {
                Fault::MarketNan { day, asset } | Fault::MarketMissing { day, asset }
                    if day < self.num_days && asset < self.num_assets =>
                {
                    for f in 0..NUM_FEATURES {
                        let idx = self.idx(day, asset, f);
                        self.data[idx] = f64::NAN;
                    }
                }
                Fault::MarketOutlier { day, asset, factor }
                    if day < self.num_days && asset < self.num_assets =>
                {
                    for f in 0..NUM_FEATURES {
                        let idx = self.idx(day, asset, f);
                        self.data[idx] *= factor;
                    }
                }
                _ => {}
            }
        }
    }

    /// Diagnoses the panel without modifying it.
    pub fn validate(&self, cfg: &QualityConfig) -> DataQualityReport {
        let mut counts = vec![0usize; IssueKind::all().len()];
        let mut examples: Vec<Issue> = Vec::new();
        let mut note = |kind: IssueKind, day: usize, asset: Option<usize>| {
            let slot = IssueKind::all()
                .iter()
                .position(|&k| k == kind)
                .expect("known kind");
            counts[slot] += 1;
            if examples.iter().filter(|i| i.kind == kind).count() < MAX_EXAMPLES {
                examples.push(Issue { kind, day, asset });
            }
        };

        for t in 0..self.num_days {
            for i in 0..self.num_assets {
                let cell: Vec<f64> = (0..NUM_FEATURES)
                    .map(|f| self.data[self.idx(t, i, f)])
                    .collect();
                if cell.iter().all(|v| v.is_nan()) {
                    note(IssueKind::MissingRow, t, Some(i));
                    continue;
                }
                for &v in &cell {
                    if !v.is_finite() {
                        note(IssueKind::NonFinitePrice, t, Some(i));
                    } else if v <= 0.0 {
                        note(IssueKind::NonPositivePrice, t, Some(i));
                    }
                }
                let (high, low) = (cell[Feature::High as usize], cell[Feature::Low as usize]);
                if high.is_finite() && low.is_finite() && high > 0.0 && low > 0.0 && high < low {
                    note(IssueKind::InvertedRange, t, Some(i));
                }
            }
        }
        // Outlier close-to-close returns between consecutive valid closes.
        for i in 0..self.num_assets {
            let mut prev: Option<f64> = None;
            for t in 0..self.num_days {
                let c = self.data[self.idx(t, i, Feature::Close as usize)];
                if !(c.is_finite() && c > 0.0) {
                    continue;
                }
                if let Some(p) = prev {
                    if (c / p - 1.0).abs() > cfg.max_abs_return {
                        note(IssueKind::OutlierReturn, t, Some(i));
                    }
                }
                prev = Some(c);
            }
        }
        for &d in &self.duplicate_days {
            note(IssueKind::DuplicateRow, d, None);
        }
        if self.num_days < cfg.min_history {
            note(IssueKind::ShortHistory, self.num_days, None);
        }

        DataQualityReport {
            panel: self.name.clone(),
            counts: IssueKind::all()
                .iter()
                .zip(&counts)
                .filter(|(_, &c)| c > 0)
                .map(|(&k, &c)| (k, c))
                .collect(),
            examples,
            asset_names: self.asset_names.clone(),
            ..Default::default()
        }
    }

    /// Validates, repairs under `policy`, and constructs the clean
    /// [`AssetPanel`]. Returns the panel together with the quality report
    /// (original issues plus repair counts); every repair is also counted
    /// on `telemetry` (`quality.repairs.*`) and the report is emitted as a
    /// `quality.report` record.
    pub fn repair(
        &self,
        policy: RepairPolicy,
        cfg: &QualityConfig,
        telemetry: &Telemetry,
    ) -> Result<(AssetPanel, DataQualityReport), QualityError> {
        let mut report = self.validate(cfg);
        if policy == RepairPolicy::Reject && report.has_critical() {
            report.emit(telemetry);
            return Err(QualityError::Rejected(Box::new(report)));
        }

        let mut work = self.clone();
        if policy == RepairPolicy::DropAssets && report.has_critical() {
            let offenders: BTreeSet<usize> = {
                // Counts are complete but examples are capped, so recompute
                // offenders exhaustively from the raw cells.
                let mut bad = BTreeSet::new();
                for i in 0..self.num_assets {
                    'asset: for t in 0..self.num_days {
                        for f in 0..NUM_FEATURES {
                            let v = self.data[self.idx(t, i, f)];
                            if !(v.is_finite() && v > 0.0) {
                                bad.insert(i);
                                break 'asset;
                            }
                        }
                    }
                }
                for issue in report.examples.iter().filter(|i| i.kind.is_critical()) {
                    if let Some(a) = issue.asset {
                        bad.insert(a);
                    }
                }
                // Outliers beyond the example cap: re-scan returns.
                for i in 0..self.num_assets {
                    if bad.contains(&i) {
                        continue;
                    }
                    let mut prev: Option<f64> = None;
                    for t in 0..self.num_days {
                        let c = self.data[self.idx(t, i, Feature::Close as usize)];
                        if !(c.is_finite() && c > 0.0) {
                            continue;
                        }
                        if let Some(p) = prev {
                            if (c / p - 1.0).abs() > cfg.max_abs_return {
                                bad.insert(i);
                                break;
                            }
                        }
                        prev = Some(c);
                    }
                }
                bad
            };
            if offenders.len() >= self.num_assets {
                return Err(QualityError::Unrepairable(
                    "every asset carries a critical issue; nothing left to trade".into(),
                ));
            }
            let keep: Vec<usize> = (0..self.num_assets)
                .filter(|i| !offenders.contains(i))
                .collect();
            let mut data = Vec::with_capacity(self.num_days * keep.len() * NUM_FEATURES);
            for t in 0..self.num_days {
                for &i in &keep {
                    for f in 0..NUM_FEATURES {
                        data.push(self.data[self.idx(t, i, f)]);
                    }
                }
            }
            report.dropped_assets = offenders
                .iter()
                .map(|&i| {
                    self.asset_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("A{i:03}"))
                })
                .collect();
            telemetry
                .counter("quality.repairs.dropped_assets")
                .add(offenders.len() as u64);
            work.num_assets = keep.len();
            work.data = data;
            work.asset_names = keep
                .iter()
                .map(|&i| {
                    self.asset_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("A{i:03}"))
                })
                .collect();
        }

        if matches!(
            policy,
            RepairPolicy::ForwardFill | RepairPolicy::ClampReturns
        ) {
            report.repaired_cells = forward_fill(&mut work)?;
            telemetry
                .counter("quality.repairs.forward_fill")
                .add(report.repaired_cells as u64);
        }
        if policy == RepairPolicy::ClampReturns {
            report.clamped_returns = clamp_returns(&mut work, cfg.max_abs_return);
            telemetry
                .counter("quality.repairs.clamped_returns")
                .add(report.clamped_returns as u64);
        }
        if policy == RepairPolicy::DropAssets {
            // Dropping offenders removes critical cells entirely, but a
            // remaining asset may still hold repairable gaps created by
            // row-level faults on dropped days; forward-fill those too.
            report.repaired_cells = forward_fill(&mut work)?;
            if report.repaired_cells > 0 {
                telemetry
                    .counter("quality.repairs.forward_fill")
                    .add(report.repaired_cells as u64);
            }
        }

        let panel = AssetPanel::try_new(
            work.name.clone(),
            work.num_days,
            work.num_assets,
            work.data.clone(),
            work.test_start.min(work.num_days - 1),
        )
        .map_err(|e| QualityError::Unrepairable(format!("repair left a dirty panel: {e}")))?;
        let mut panel = panel;
        panel.set_asset_names(work.asset_names.clone());
        report.emit(telemetry);
        Ok((panel, report))
    }
}

/// Rewrites every invalid cell (NaN/Inf/non-positive) from the most recent
/// valid value of the same asset and feature; leading gaps back-fill from
/// the first valid value. Returns the number of rewritten cells; errors
/// when a whole (asset, feature) series has no valid value at all.
fn forward_fill(p: &mut RawPanel) -> Result<usize, QualityError> {
    let mut repaired = 0usize;
    for i in 0..p.num_assets {
        for f in 0..NUM_FEATURES {
            let series: Vec<f64> = (0..p.num_days)
                .map(|t| p.data[(t * p.num_assets + i) * NUM_FEATURES + f])
                .collect();
            let first_valid = series.iter().position(|v| v.is_finite() && *v > 0.0);
            let Some(first) = first_valid else {
                let name = p
                    .asset_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("A{i:03}"));
                return Err(QualityError::Unrepairable(format!(
                    "asset {name} feature {f} has no valid value to fill from"
                )));
            };
            let mut last = series[first];
            for t in 0..p.num_days {
                let idx = (t * p.num_assets + i) * NUM_FEATURES + f;
                let v = p.data[idx];
                if v.is_finite() && v > 0.0 {
                    last = v;
                } else {
                    p.data[idx] = last;
                    repaired += 1;
                }
            }
        }
    }
    Ok(repaired)
}

/// Clamps close-to-close returns to `±max_abs_return`, scaling the other
/// features by the close adjustment so each day's OHLC stays coherent.
/// Assumes all cells are already valid (run [`forward_fill`] first).
/// Returns the number of clamped days.
fn clamp_returns(p: &mut RawPanel, max_abs_return: f64) -> usize {
    let mut clamped = 0usize;
    let close = Feature::Close as usize;
    for i in 0..p.num_assets {
        let mut prev = p.data[i * NUM_FEATURES + close];
        for t in 1..p.num_days {
            let idx_close = (t * p.num_assets + i) * NUM_FEATURES + close;
            let c = p.data[idx_close];
            let r = c / prev - 1.0;
            if r.abs() > max_abs_return {
                let bounded = prev * (1.0 + max_abs_return.copysign(r));
                let scale = bounded / c;
                for f in 0..NUM_FEATURES {
                    let idx = (t * p.num_assets + i) * NUM_FEATURES + f;
                    p.data[idx] *= scale;
                }
                clamped += 1;
                prev = bounded;
            } else {
                prev = c;
            }
        }
    }
    clamped
}

/// Diagnoses an already-constructed (price-valid) panel — outlier returns,
/// short history — for guards that refuse to benchmark garbage.
pub fn assess_panel(panel: &AssetPanel, cfg: &QualityConfig) -> DataQualityReport {
    RawPanel::from_panel(panel).validate(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn clean_raw() -> RawPanel {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 60,
            test_start: 45,
            ..Default::default()
        }
        .generate();
        RawPanel::from_panel(&p)
    }

    #[test]
    fn clean_panel_reports_clean_and_roundtrips() {
        let raw = clean_raw();
        let report = raw.validate(&QualityConfig::default());
        assert!(!report.has_critical(), "{}", report.summary());
        let (panel, rep) = raw
            .repair(
                RepairPolicy::Reject,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect("clean panel passes Reject");
        assert_eq!(rep.repaired_cells, 0);
        // Bitwise identical round-trip.
        for t in 0..panel.num_days() {
            for i in 0..panel.num_assets() {
                assert_eq!(panel.close(t, i), raw.data[raw.idx(t, i, 3)]);
            }
        }
    }

    #[test]
    fn detects_and_forward_fills_dirty_cells() {
        let mut raw = clean_raw();
        let nan_idx = raw.idx(10, 1, Feature::Close as usize);
        let neg_idx = raw.idx(20, 2, Feature::Open as usize);
        raw.data[nan_idx] = f64::NAN;
        raw.data[neg_idx] = -4.0;
        for f in 0..NUM_FEATURES {
            let idx = raw.idx(30, 0, f);
            raw.data[idx] = f64::NAN; // whole row missing
        }
        let report = raw.validate(&QualityConfig::default());
        assert!(report.count(IssueKind::NonFinitePrice) >= 1);
        assert_eq!(report.count(IssueKind::NonPositivePrice), 1);
        assert_eq!(report.count(IssueKind::MissingRow), 1);
        assert!(report.has_critical());

        let (panel, rep) = raw
            .repair(
                RepairPolicy::ForwardFill,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect("forward fill repairs");
        assert_eq!(rep.repaired_cells, 2 + NUM_FEATURES);
        // Filled from the previous day's value.
        assert_eq!(panel.close(10, 1), panel.close(9, 1));
        assert_eq!(panel.close(30, 0), panel.close(29, 0));
    }

    #[test]
    fn reject_errors_only_on_criticals() {
        let mut raw = clean_raw();
        let idx = raw.idx(5, 0, 0);
        raw.data[idx] = f64::INFINITY;
        let err = raw
            .repair(
                RepairPolicy::Reject,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect_err("critical issue must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("A000"), "offender named: {msg}");
    }

    #[test]
    fn drop_assets_removes_exactly_the_offenders() {
        let mut raw = clean_raw();
        let idx = raw.idx(12, 1, Feature::Low as usize);
        raw.data[idx] = 0.0;
        let (panel, rep) = raw
            .repair(
                RepairPolicy::DropAssets,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect("droppable");
        assert_eq!(panel.num_assets(), 2);
        assert_eq!(rep.dropped_assets, vec!["A001".to_string()]);
        assert_eq!(
            panel.asset_names(),
            ["A000".to_string(), "A002".to_string()]
        );
    }

    #[test]
    fn clamp_returns_bounds_every_return() {
        let mut raw = clean_raw();
        // A 40× fat-finger day.
        for f in 0..NUM_FEATURES {
            let idx = raw.idx(25, 0, f);
            raw.data[idx] *= 40.0;
        }
        let cfg = QualityConfig::default();
        let report = raw.validate(&cfg);
        assert!(report.count(IssueKind::OutlierReturn) >= 1);
        let (panel, rep) = raw
            .repair(RepairPolicy::ClampReturns, &cfg, &Telemetry::disabled())
            .expect("clampable");
        assert!(rep.clamped_returns >= 1);
        for t in 1..panel.num_days() {
            for r in panel.growth_ratios(t) {
                assert!(
                    r.abs() <= cfg.max_abs_return + 1e-9,
                    "return {r} at day {t} above bound"
                );
            }
        }
    }

    #[test]
    fn unrepairable_when_an_asset_has_no_valid_values() {
        let mut raw = clean_raw();
        for t in 0..raw.num_days {
            let idx = raw.idx(t, 2, Feature::Close as usize);
            raw.data[idx] = f64::NAN;
        }
        let err = raw
            .repair(
                RepairPolicy::ForwardFill,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect_err("nothing to fill from");
        assert!(matches!(err, QualityError::Unrepairable(_)));
    }

    #[test]
    fn fault_injector_corrupts_rows_deterministically() {
        use cit_faults::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse(
            "cit-faults v1\nseed 1\nmarket-nan 7 0\nmarket-outlier 9 1 30.0\ntruncate-read 40\n",
        )
        .expect("plan");
        let mut a = clean_raw();
        let mut b = clean_raw();
        a.apply_faults(&FaultInjector::new(plan.clone()));
        b.apply_faults(&FaultInjector::new(plan));
        assert_eq!(a.num_days, 40);
        let close_idx = a.idx(7, 0, Feature::Close as usize);
        assert!(a.data[close_idx].is_nan());
        // Same plan → bitwise-identical corruption.
        assert_eq!(a.num_days, b.num_days);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
        let report = a.validate(&QualityConfig::default());
        assert!(report.has_critical());
        let (panel, _) = a
            .repair(
                RepairPolicy::ClampReturns,
                &QualityConfig::default(),
                &Telemetry::disabled(),
            )
            .expect("repairable");
        assert_eq!(panel.num_days(), 40);
    }

    #[test]
    fn telemetry_counts_repairs() {
        let (tel, sink) = Telemetry::memory();
        let mut raw = clean_raw();
        let idx = raw.idx(3, 0, 1);
        raw.data[idx] = f64::NAN;
        let _ = raw
            .repair(RepairPolicy::ForwardFill, &QualityConfig::default(), &tel)
            .expect("repairs");
        assert_eq!(tel.counter("quality.repairs.forward_fill").get(), 1);
        let reports = sink.by_kind("quality.report");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].get_f64("repaired_cells"), Some(1.0));
    }
}
