//! Synthetic analogues of the paper's three datasets (Table II).
//!
//! | Dataset | Assets | Train days | Test days | Note |
//! |---------|--------|------------|-----------|------|
//! | U.S.    | 80     | ~2895      | ~630      | bear regime inside test |
//! | H.K.    | 45     | ~2895      | ~252      | |
//! | China   | 34     | ~2895      | ~252      | |
//!
//! `scaled(f)` shrinks a preset by factor `f` for smoke tests and CI.

use crate::synth::{Regime, RegimeSegment, SynthConfig};

/// The three markets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketPreset {
    /// U.S. market: 80 assets, long test window with a bear segment
    /// (mirrors the 2020–2022 test period including the 2022 bear market).
    Us,
    /// Hong Kong market: 45 assets, one-year test window.
    Hk,
    /// China (Shanghai) market: 34 assets, one-year test window.
    China,
}

impl MarketPreset {
    /// All presets, in paper order.
    pub const ALL: [MarketPreset; 3] = [MarketPreset::Us, MarketPreset::Hk, MarketPreset::China];

    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            MarketPreset::Us => "U.S. market",
            MarketPreset::Hk => "H.K. market",
            MarketPreset::China => "China market",
        }
    }

    /// The full-scale configuration.
    pub fn config(self) -> SynthConfig {
        match self {
            MarketPreset::Us => SynthConfig {
                name: "US".into(),
                num_assets: 80,
                num_days: 2895 + 630,
                test_start: 2895,
                num_sectors: 10,
                // Bull training history, then a test period whose tail is a
                // pronounced bear market (the paper's post-2022 segment).
                regimes: vec![
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 2600,
                    },
                    RegimeSegment {
                        regime: Regime::Bear,
                        days: 180,
                    },
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 115 + 330,
                    },
                    RegimeSegment {
                        regime: Regime::Bear,
                        days: 300,
                    },
                ],
                seed: 11_080,
                ..SynthConfig::default()
            },
            MarketPreset::Hk => SynthConfig {
                name: "HK".into(),
                num_assets: 45,
                num_days: 2895 + 252,
                test_start: 2895,
                num_sectors: 8,
                regimes: vec![
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 1500,
                    },
                    RegimeSegment {
                        regime: Regime::Bear,
                        days: 200,
                    },
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 1195,
                    },
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 252,
                    },
                ],
                bull_drift: 3e-4,
                seed: 22_045,
                ..SynthConfig::default()
            },
            MarketPreset::China => SynthConfig {
                name: "CN".into(),
                num_assets: 34,
                num_days: 2895 + 252,
                test_start: 2895,
                num_sectors: 6,
                regimes: vec![
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 1200,
                    },
                    RegimeSegment {
                        regime: Regime::Bear,
                        days: 250,
                    },
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 1445,
                    },
                    RegimeSegment {
                        regime: Regime::Bull,
                        days: 252,
                    },
                ],
                bull_drift: 3.5e-4,
                asset_cycle_amp: 0.04,
                seed: 33_034,
                ..SynthConfig::default()
            },
        }
    }

    /// A scaled-down configuration: asset count divided by `shrink_assets`
    /// and day counts divided by `shrink_days` (minimums keep the panel
    /// usable). Intended for smoke tests and CI.
    pub fn scaled(self, shrink_assets: usize, shrink_days: usize) -> SynthConfig {
        let full = self.config();
        let num_assets = (full.num_assets / shrink_assets.max(1)).max(3);
        let train = (full.test_start / shrink_days.max(1)).max(120);
        let test = ((full.num_days - full.test_start) / shrink_days.max(1)).max(60);
        let regimes = full
            .regimes
            .iter()
            .map(|s| RegimeSegment {
                regime: s.regime,
                days: (s.days / shrink_days.max(1)).max(20),
            })
            .collect();
        SynthConfig {
            num_assets,
            num_days: train + test,
            test_start: train,
            regimes,
            ..full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics() {
        let us = MarketPreset::Us.config();
        assert_eq!(us.num_assets, 80);
        assert_eq!(us.num_days - us.test_start, 630);
        let hk = MarketPreset::Hk.config();
        assert_eq!(hk.num_assets, 45);
        assert_eq!(hk.num_days - hk.test_start, 252);
        let cn = MarketPreset::China.config();
        assert_eq!(cn.num_assets, 34);
    }

    #[test]
    fn us_test_period_contains_bear() {
        let us = MarketPreset::Us.config();
        let has_bear = (us.test_start..us.num_days).any(|t| us.regime_on(t) == Regime::Bear);
        assert!(has_bear, "the U.S. test window must contain a bear regime");
    }

    #[test]
    fn scaled_preserves_structure() {
        let s = MarketPreset::Us.scaled(8, 10);
        assert!(s.num_assets >= 3);
        assert!(s.test_start >= 120);
        assert!(s.num_days > s.test_start);
        let p = s.generate();
        assert_eq!(p.num_assets(), s.num_assets);
    }

    #[test]
    fn presets_generate_distinct_markets() {
        let a = MarketPreset::Hk.scaled(5, 12).generate();
        let b = MarketPreset::China.scaled(5, 12).generate();
        assert_ne!(a.close(10, 0), b.close(10, 0));
    }
}
