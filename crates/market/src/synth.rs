//! Synthetic fractal market generator.
//!
//! Substitutes for the paper's Yahoo-Finance data (see DESIGN.md §2). The
//! generator embodies the fractal market hypothesis the paper builds on:
//! every asset's log price is a sum of components living at *distinct time
//! scales* — a regime-driven market trend, slow sector cycles, mid-frequency
//! asset cycles and high-frequency noise — so wavelet-split policies can
//! specialise on genuine horizon-specific structure.

use crate::panel::{AssetPanel, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Market regime for a span of days.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Rising drift, normal volatility.
    Bull,
    /// Falling drift, elevated volatility.
    Bear,
}

/// A scheduled regime segment: the regime holds for `days` days.
#[derive(Debug, Clone, Copy)]
pub struct RegimeSegment {
    /// Which regime.
    pub regime: Regime,
    /// Segment length in days.
    pub days: usize,
}

/// Configuration of the synthetic market.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset label.
    pub name: String,
    /// Number of assets `m`.
    pub num_assets: usize,
    /// Total days `T` (train + test).
    pub num_days: usize,
    /// First day of the test period.
    pub test_start: usize,
    /// Number of sector groups.
    pub num_sectors: usize,
    /// Deterministic regime schedule; cycled/truncated to `num_days`.
    pub regimes: Vec<RegimeSegment>,
    /// Daily market drift in a bull regime (log scale).
    pub bull_drift: f64,
    /// Daily market drift in a bear regime (log scale).
    pub bear_drift: f64,
    /// Daily market volatility in a bull regime.
    pub market_vol: f64,
    /// Volatility multiplier applied in bear regimes.
    pub bear_vol_mult: f64,
    /// Amplitude of the slow sector cycle (log scale).
    pub sector_cycle_amp: f64,
    /// Period of the slow sector cycle in days.
    pub sector_cycle_period: f64,
    /// Amplitude of the per-asset mid-frequency cycle.
    pub asset_cycle_amp: f64,
    /// Period range of per-asset cycles (uniformly drawn).
    pub asset_cycle_period: (f64, f64),
    /// Std of idiosyncratic daily noise.
    pub idio_vol: f64,
    /// Intraday range scale for synthesising OHLC from closes.
    pub intraday_range: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            name: "synthetic".to_string(),
            num_assets: 16,
            num_days: 1000,
            test_start: 750,
            num_sectors: 4,
            regimes: vec![
                RegimeSegment {
                    regime: Regime::Bull,
                    days: 400,
                },
                RegimeSegment {
                    regime: Regime::Bear,
                    days: 120,
                },
                RegimeSegment {
                    regime: Regime::Bull,
                    days: 480,
                },
            ],
            bull_drift: 4e-4,
            bear_drift: -9e-4,
            market_vol: 0.009,
            bear_vol_mult: 2.0,
            sector_cycle_amp: 0.05,
            sector_cycle_period: 180.0,
            asset_cycle_amp: 0.03,
            asset_cycle_period: (15.0, 60.0),
            idio_vol: 0.012,
            intraday_range: 0.006,
            seed: 20240101,
        }
    }
}

impl SynthConfig {
    /// The regime in force on day `t` (schedule cycled when exhausted).
    pub fn regime_on(&self, t: usize) -> Regime {
        let total: usize = self.regimes.iter().map(|s| s.days).sum();
        assert!(total > 0, "regime schedule must cover at least one day");
        let mut day = t % total;
        for seg in &self.regimes {
            if day < seg.days {
                return seg.regime;
            }
            day -= seg.days;
        }
        unreachable!("regime schedule exhausted")
    }

    /// Generates the panel.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (zero assets/days, empty regime
    /// schedule, `test_start` out of range).
    pub fn generate(&self) -> AssetPanel {
        assert!(self.num_assets >= 1 && self.num_days >= 2);
        assert!(self.test_start < self.num_days, "test_start out of range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.num_assets;
        let t_total = self.num_days;

        // Per-asset structure.
        let betas: Vec<f64> = (0..m).map(|_| 0.6 + 0.8 * rng.random::<f64>()).collect();
        let sectors: Vec<usize> = (0..m).map(|i| i % self.num_sectors.max(1)).collect();
        let sector_gamma: Vec<f64> = (0..m).map(|_| 0.5 + rng.random::<f64>()).collect();
        let cycle_period: Vec<f64> = (0..m)
            .map(|_| rng.random_range(self.asset_cycle_period.0..self.asset_cycle_period.1))
            .collect();
        let cycle_phase: Vec<f64> = (0..m)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        let sector_phase: Vec<f64> = (0..self.num_sectors.max(1))
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();

        // Market log-level path.
        let mut market = vec![0.0f64; t_total];
        let mut level = 0.0;
        for (t, slot) in market.iter_mut().enumerate() {
            let (drift, vol) = match self.regime_on(t) {
                Regime::Bull => (self.bull_drift, self.market_vol),
                Regime::Bear => (self.bear_drift, self.market_vol * self.bear_vol_mult),
            };
            level += drift + vol * cit_rand_normal(&mut rng);
            *slot = level;
        }

        // Per-asset close paths.
        let mut closes = vec![0.0f64; t_total * m];
        for i in 0..m {
            let base = (3.0 + rng.random::<f64>() * 1.5).exp(); // price ~ e^3..e^4.5
            let mut idio = 0.0;
            for t in 0..t_total {
                idio += self.idio_vol * cit_rand_normal(&mut rng);
                // Mean-revert the idiosyncratic walk slightly so assets do
                // not wander arbitrarily far from the market.
                idio *= 0.999;
                let tf = t as f64;
                let sector_term = self.sector_cycle_amp
                    * (std::f64::consts::TAU * tf / self.sector_cycle_period
                        + sector_phase[sectors[i]])
                        .sin()
                    * sector_gamma[i];
                let cycle_term = self.asset_cycle_amp
                    * (std::f64::consts::TAU * tf / cycle_period[i] + cycle_phase[i]).sin();
                let log_price = betas[i] * market[t] + sector_term + cycle_term + idio;
                closes[t * m + i] = base * log_price.exp();
            }
        }

        // Synthesise OHLC from closes.
        let mut data = vec![0.0f64; t_total * m * NUM_FEATURES];
        for t in 0..t_total {
            for i in 0..m {
                let close = closes[t * m + i];
                let prev_close = if t == 0 {
                    close
                } else {
                    closes[(t - 1) * m + i]
                };
                let gap = 1.0 + self.intraday_range * 0.5 * cit_rand_normal(&mut rng);
                let open = (prev_close * gap).max(close * 0.5);
                let span = self.intraday_range * (1.0 + cit_rand_normal(&mut rng).abs());
                let high = open.max(close) * (1.0 + span * 0.5);
                let low = (open.min(close) * (1.0 - span * 0.5)).max(1e-6);
                let idx = (t * m + i) * NUM_FEATURES;
                data[idx] = open;
                data[idx + 1] = high;
                data[idx + 2] = low;
                data[idx + 3] = close;
            }
        }
        AssetPanel::new(self.name.clone(), t_total, m, data, self.test_start)
    }
}

fn cit_rand_normal(rng: &mut StdRng) -> f64 {
    // Box–Muller; kept local so the market crate does not depend on
    // cit-tensor just for a sampler.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panel::Feature;

    #[test]
    fn generates_valid_panel() {
        let cfg = SynthConfig {
            num_assets: 5,
            num_days: 300,
            test_start: 200,
            ..Default::default()
        };
        let p = cfg.generate();
        assert_eq!(p.num_assets(), 5);
        assert_eq!(p.num_days(), 300);
        for t in 0..300 {
            for i in 0..5 {
                let (o, h, l, c) = (
                    p.price(t, i, Feature::Open),
                    p.price(t, i, Feature::High),
                    p.price(t, i, Feature::Low),
                    p.price(t, i, Feature::Close),
                );
                assert!(h >= o.max(c) - 1e-9, "high below open/close at t={t} i={i}");
                assert!(l <= o.min(c) + 1e-9, "low above open/close at t={t} i={i}");
                assert!(l > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SynthConfig {
            num_days: 100,
            test_start: 80,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.close(50, 3), b.close(50, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let base = SynthConfig {
            num_days: 100,
            test_start: 80,
            ..Default::default()
        };
        let other = SynthConfig {
            seed: 999,
            ..base.clone()
        };
        assert_ne!(base.generate().close(50, 0), other.generate().close(50, 0));
    }

    #[test]
    fn bear_regime_depresses_index() {
        // All-bear market should end lower than all-bull, same seed.
        let bull = SynthConfig {
            num_days: 400,
            test_start: 300,
            regimes: vec![RegimeSegment {
                regime: Regime::Bull,
                days: 400,
            }],
            ..Default::default()
        };
        let bear = SynthConfig {
            regimes: vec![RegimeSegment {
                regime: Regime::Bear,
                days: 400,
            }],
            ..bull.clone()
        };
        let ib = bull.generate().index_curve();
        let ir = bear.generate().index_curve();
        assert!(
            ib.last().unwrap() > ir.last().unwrap(),
            "bull index {} should beat bear index {}",
            ib.last().unwrap(),
            ir.last().unwrap()
        );
    }

    #[test]
    fn regime_schedule_cycles() {
        let cfg = SynthConfig {
            regimes: vec![
                RegimeSegment {
                    regime: Regime::Bull,
                    days: 10,
                },
                RegimeSegment {
                    regime: Regime::Bear,
                    days: 5,
                },
            ],
            ..Default::default()
        };
        assert_eq!(cfg.regime_on(0), Regime::Bull);
        assert_eq!(cfg.regime_on(9), Regime::Bull);
        assert_eq!(cfg.regime_on(10), Regime::Bear);
        assert_eq!(cfg.regime_on(14), Regime::Bear);
        assert_eq!(cfg.regime_on(15), Regime::Bull); // cycled
    }

    #[test]
    fn assets_share_market_factor() {
        // Average pairwise correlation of daily returns should be clearly
        // positive thanks to the common market factor.
        let cfg = SynthConfig {
            num_assets: 8,
            num_days: 500,
            test_start: 400,
            ..Default::default()
        };
        let p = cfg.generate();
        let rets: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (1..500)
                    .map(|t| (p.close(t, i) / p.close(t - 1, i)).ln())
                    .collect()
            })
            .collect();
        let corr = |a: &[f64], b: &[f64]| {
            let n = a.len() as f64;
            let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
            let cov: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f64>()
                / n;
            let (va, vb) = (
                a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n,
                b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n,
            );
            cov / (va.sqrt() * vb.sqrt())
        };
        let mut sum = 0.0;
        let mut cnt = 0;
        for i in 0..8 {
            for j in i + 1..8 {
                sum += corr(&rets[i], &rets[j]);
                cnt += 1;
            }
        }
        let avg = sum / cnt as f64;
        assert!(avg > 0.1, "average pairwise correlation too low: {avg}");
    }
}
