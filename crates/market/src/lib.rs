//! # cit-market
//!
//! The market substrate of the Cross-Insight Trader reproduction: asset
//! panels (OHLC, train/test split), a synthetic *fractal* market generator
//! with regime switching (the data substitution described in DESIGN.md),
//! the portfolio-management MDP environment, a strategy-agnostic
//! backtester, the paper's evaluation metrics (AR / SR / MDD / CR) and CSV
//! import/export.
//!
//! ```
//! use cit_market::{EnvConfig, MarketPreset, UniformStrategy, run_test_period};
//!
//! let panel = MarketPreset::Hk.scaled(9, 24).generate();
//! let result = run_test_period(&panel, EnvConfig::default(), &mut UniformStrategy);
//! assert!(result.metrics.mdd >= 0.0);
//! ```

#![deny(missing_docs)]

mod backtest;
mod constraints;
mod csv;
mod env;
pub mod metrics;
mod panel;
mod presets;
pub mod quality;
pub mod risk;
mod synth;
mod walkforward;

pub use backtest::{
    market_result, run_backtest, run_backtest_with, run_test_period, run_test_period_with,
    BacktestResult, DecisionContext, Strategy, UniformStrategy,
};
pub use constraints::{ConstrainedStrategy, PortfolioConstraints};
pub use csv::{panel_from_csv, panel_to_csv, raw_panel_from_csv, save, series_to_csv, CsvError};
pub use env::{
    project_to_simplex, weight_concentration, EnvConfig, EnvSnapshot, PortfolioEnv, StepResult,
};
pub use metrics::Metrics;
pub use panel::{AssetPanel, Feature, PanelError, NUM_FEATURES};
pub use presets::MarketPreset;
pub use quality::{
    assess_panel, DataQualityReport, Issue, IssueKind, QualityConfig, QualityError, RawPanel,
    RepairPolicy,
};
pub use synth::{Regime, RegimeSegment, SynthConfig};
pub use walkforward::{
    fold_result_path, folds, walk_forward, walk_forward_resumable, walk_forward_resumable_with,
    Fold, WalkForwardConfig, WalkForwardError, WalkForwardResult,
};
