//! Portfolio constraints: per-asset weight caps and group (sector)
//! exposure limits, enforced by iterative redistribution on the simplex.
//! A [`ConstrainedStrategy`] wrapper applies them to any inner
//! [`Strategy`], so a risk office can cap what a learned policy may do.

use crate::backtest::{DecisionContext, Strategy};
use crate::env::project_to_simplex;

/// Declarative constraints on a long-only portfolio.
#[derive(Debug, Clone, Default)]
pub struct PortfolioConstraints {
    /// Maximum weight of any single asset (`None` = uncapped).
    pub max_weight: Option<f64>,
    /// Minimum weight of any single asset (useful to force diversification).
    pub min_weight: Option<f64>,
    /// Asset-index groups with a maximum combined exposure.
    pub group_caps: Vec<(Vec<usize>, f64)>,
}

impl PortfolioConstraints {
    /// A cap-only constraint set.
    pub fn with_max_weight(cap: f64) -> Self {
        PortfolioConstraints {
            max_weight: Some(cap),
            ..Default::default()
        }
    }

    /// `true` when `w` satisfies every constraint within `tol`.
    pub fn is_satisfied(&self, w: &[f64], tol: f64) -> bool {
        if let Some(cap) = self.max_weight {
            if w.iter().any(|&x| x > cap + tol) {
                return false;
            }
        }
        if let Some(floor) = self.min_weight {
            if w.iter().any(|&x| x < floor - tol) {
                return false;
            }
        }
        for (group, cap) in &self.group_caps {
            let exposure: f64 = group.iter().map(|&i| w[i]).sum();
            if exposure > cap + tol {
                return false;
            }
        }
        true
    }

    /// Feasibility check: caps must admit a simplex point.
    ///
    /// # Panics
    /// Panics if the constraints cannot be satisfied by any portfolio of
    /// `m` assets (e.g. `max_weight · m < 1`).
    pub fn assert_feasible(&self, m: usize) {
        if let Some(cap) = self.max_weight {
            assert!(
                cap * m as f64 >= 1.0 - 1e-9,
                "max_weight {cap} infeasible for {m} assets"
            );
        }
        if let Some(floor) = self.min_weight {
            assert!(
                floor * m as f64 <= 1.0 + 1e-9,
                "min_weight {floor} infeasible for {m} assets"
            );
        }
        if let (Some(cap), Some(floor)) = (self.max_weight, self.min_weight) {
            assert!(cap >= floor, "max_weight below min_weight");
        }
    }

    /// Projects `w` onto the constraint set (approximately): clamp, then
    /// redistribute the excess to unconstrained assets, iterating until
    /// stable. Falls back to the closest feasible uniform-ish portfolio.
    pub fn apply(&self, w: &[f64]) -> Vec<f64> {
        let m = w.len();
        self.assert_feasible(m);
        let mut out = project_to_simplex(w);
        for _ in 0..32 {
            let mut changed = false;

            // Per-asset caps and floors.
            if let Some(cap) = self.max_weight {
                let excess: f64 = out.iter().map(|&x| (x - cap).max(0.0)).sum();
                if excess > 1e-12 {
                    changed = true;
                    let headroom: f64 = out
                        .iter()
                        .map(|&x| if x < cap { cap - x } else { 0.0 })
                        .sum();
                    let mut next = out.clone();
                    for x in next.iter_mut() {
                        if *x > cap {
                            *x = cap;
                        }
                    }
                    if headroom > 1e-12 {
                        for x in next.iter_mut() {
                            if *x < cap {
                                *x += excess * (cap - *x) / headroom;
                            }
                        }
                    }
                    out = next;
                }
            }
            if let Some(floor) = self.min_weight {
                let deficit: f64 = out.iter().map(|&x| (floor - x).max(0.0)).sum();
                if deficit > 1e-12 {
                    changed = true;
                    let surplus: f64 = out.iter().map(|&x| (x - floor).max(0.0)).sum();
                    let mut next = out.clone();
                    for x in next.iter_mut() {
                        if *x < floor {
                            *x = floor;
                        }
                    }
                    if surplus > 1e-12 {
                        for x in next.iter_mut() {
                            if *x > floor {
                                *x -= deficit * (*x - floor) / surplus;
                            }
                        }
                    }
                    out = next;
                }
            }

            // Group caps: scale the group down, spread excess outside it.
            for (group, cap) in &self.group_caps {
                let exposure: f64 = group.iter().map(|&i| out[i]).sum();
                if exposure > cap + 1e-12 {
                    changed = true;
                    let scale = cap / exposure;
                    let freed = exposure - cap;
                    let outside: Vec<usize> = (0..m).filter(|i| !group.contains(i)).collect();
                    let outside_mass: f64 = outside.iter().map(|&i| out[i]).sum();
                    for &i in group {
                        out[i] *= scale;
                    }
                    if outside.is_empty() {
                        continue;
                    }
                    for &i in &outside {
                        if outside_mass > 1e-12 {
                            out[i] += freed * out[i] / outside_mass;
                        } else {
                            out[i] += freed / outside.len() as f64;
                        }
                    }
                }
            }

            // Renormalise drift.
            let sum: f64 = out.iter().sum();
            if (sum - 1.0).abs() > 1e-12 && sum > 0.0 {
                out.iter_mut().for_each(|x| *x /= sum);
            }
            if !changed {
                break;
            }
        }
        out
    }
}

/// Wraps a strategy and forces its output through the constraints.
pub struct ConstrainedStrategy<S: Strategy> {
    inner: S,
    constraints: PortfolioConstraints,
}

impl<S: Strategy> ConstrainedStrategy<S> {
    /// Wraps `inner` with `constraints`.
    pub fn new(inner: S, constraints: PortfolioConstraints) -> Self {
        ConstrainedStrategy { inner, constraints }
    }
}

impl<S: Strategy> Strategy for ConstrainedStrategy<S> {
    fn name(&self) -> String {
        format!("{}+caps", self.inner.name())
    }

    fn reset(&mut self, m: usize) {
        self.constraints.assert_feasible(m);
        self.inner.reset(m);
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let raw = self.inner.decide(ctx);
        self.constraints.apply(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtest::run_backtest;
    use crate::env::EnvConfig;
    use crate::synth::SynthConfig;

    #[test]
    fn cap_is_enforced() {
        let c = PortfolioConstraints::with_max_weight(0.4);
        let w = c.apply(&[0.9, 0.05, 0.05]);
        assert!(c.is_satisfied(&w, 1e-9), "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] <= 0.4 + 1e-9);
    }

    #[test]
    fn floor_is_enforced() {
        let c = PortfolioConstraints {
            min_weight: Some(0.1),
            ..Default::default()
        };
        let w = c.apply(&[1.0, 0.0, 0.0]);
        assert!(c.is_satisfied(&w, 1e-9), "{w:?}");
        assert!(w.iter().all(|&x| x >= 0.1 - 1e-9));
    }

    #[test]
    fn group_cap_is_enforced() {
        let c = PortfolioConstraints {
            group_caps: vec![(vec![0, 1], 0.5)],
            ..Default::default()
        };
        let w = c.apply(&[0.5, 0.4, 0.1]);
        assert!(c.is_satisfied(&w, 1e-6), "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] + w[1] <= 0.5 + 1e-6);
    }

    #[test]
    fn feasible_input_is_untouched() {
        let c = PortfolioConstraints::with_max_weight(0.6);
        let input = [0.5, 0.3, 0.2];
        let w = c.apply(&input);
        for (a, b) in w.iter().zip(&input) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_cap_panics() {
        let c = PortfolioConstraints::with_max_weight(0.2);
        let _ = c.apply(&[0.5, 0.5]); // 2 assets · 0.2 < 1
    }

    #[test]
    fn constrained_strategy_caps_a_concentrated_policy() {
        struct AllIn;
        impl Strategy for AllIn {
            fn name(&self) -> String {
                "AllIn".to_string()
            }
            fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
                let m = ctx.panel.num_assets();
                let mut w = vec![0.0; m];
                w[0] = 1.0;
                w
            }
        }
        let p = SynthConfig {
            num_assets: 4,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate();
        let mut capped =
            ConstrainedStrategy::new(AllIn, PortfolioConstraints::with_max_weight(0.5));
        let res = run_backtest(&p, EnvConfig::default(), 40, 80, &mut capped);
        assert_eq!(res.name, "AllIn+caps");
        for w in &res.weights {
            assert!(w[0] <= 0.5 + 1e-6, "cap violated: {w:?}");
        }
    }

    #[test]
    fn cap_at_uniform_yields_uniform() {
        let c = PortfolioConstraints::with_max_weight(0.25);
        let w = c.apply(&[1.0, 0.0, 0.0, 0.0]);
        for x in &w {
            assert!((x - 0.25).abs() < 1e-6, "{w:?}");
        }
    }
}
