//! The portfolio-management MDP (paper Section III).
//!
//! State: a feature window over the `z` most recent days. Action: a
//! portfolio vector on the simplex. Reward: log return of the portfolio
//! value net of transaction costs. The market is exogenous — actions do not
//! affect price transitions (`s_{t+1} ~ Z(s_t)`), matching the paper's
//! assumption.

use crate::panel::AssetPanel;
use cit_telemetry::{Record, Telemetry};

/// Configuration of a [`PortfolioEnv`].
#[derive(Debug, Clone, Copy)]
pub struct EnvConfig {
    /// Look-back window length `z`.
    pub window: usize,
    /// Proportional transaction cost per unit of turnover (e.g. 0.001).
    pub transaction_cost: f64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            window: 32,
            transaction_cost: 1e-3,
        }
    }
}

/// Serializable snapshot of a [`PortfolioEnv`]'s mutable episode state
/// (day, wealth, drawdown peak, drifted holdings), used by checkpoint
/// resume to continue a training episode exactly where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvSnapshot {
    /// The current decision day.
    pub t: usize,
    /// Wealth at the snapshot.
    pub wealth: f64,
    /// Highest wealth reached so far.
    pub peak_wealth: f64,
    /// Portfolio weights currently held (post-drift).
    pub weights: Vec<f64>,
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Log return of portfolio value, net of costs (the paper's `r_t`).
    pub reward: f64,
    /// Simple (arithmetic) net return this day.
    pub simple_return: f64,
    /// `true` when the episode has consumed the final day.
    pub done: bool,
}

/// A sequential portfolio-management environment over a span of days of an
/// [`AssetPanel`].
pub struct PortfolioEnv<'a> {
    panel: &'a AssetPanel,
    cfg: EnvConfig,
    start: usize,
    end: usize,
    t: usize,
    wealth: f64,
    peak_wealth: f64,
    weights: Vec<f64>,
    wealth_curve: Vec<f64>,
    telemetry: Telemetry,
}

impl<'a> PortfolioEnv<'a> {
    /// Creates an environment running from day `start` to `end` (exclusive).
    ///
    /// Decisions are made on each day `t ∈ [start, end−1)` and realised on
    /// `t+1`. `start` must leave at least `window` days of history.
    ///
    /// # Panics
    /// Panics when the span is too short or exceeds the panel.
    pub fn new(panel: &'a AssetPanel, cfg: EnvConfig, start: usize, end: usize) -> Self {
        assert!(
            start + 1 >= cfg.window,
            "start leaves insufficient history for the window"
        );
        assert!(end <= panel.num_days(), "end beyond panel");
        assert!(start + 1 < end, "span must contain at least one step");
        let m = panel.num_assets();
        let mut env = PortfolioEnv {
            panel,
            cfg,
            start,
            end,
            t: start,
            wealth: 1.0,
            peak_wealth: 1.0,
            weights: vec![1.0 / m as f64; m],
            wealth_curve: Vec::new(),
            telemetry: Telemetry::disabled(),
        };
        env.reset();
        env
    }

    /// Attaches a telemetry handle; every [`PortfolioEnv::step`] then
    /// emits an `env.step` record (reward, turnover, weight concentration,
    /// drawdown).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Convenience: an environment over the panel's test period.
    pub fn test_period(panel: &'a AssetPanel, cfg: EnvConfig) -> Self {
        Self::new(panel, cfg, panel.test_start(), panel.num_days())
    }

    /// Convenience: an environment over the panel's training period,
    /// starting at the first day with a full look-back window behind it
    /// (day `window − 1`, whose window covers days `0..window`).
    pub fn train_period(panel: &'a AssetPanel, cfg: EnvConfig) -> Self {
        Self::new(panel, cfg, cfg.window.max(1) - 1, panel.test_start())
    }

    /// Resets wealth, weights and the clock.
    pub fn reset(&mut self) {
        let m = self.panel.num_assets();
        self.t = self.start;
        self.wealth = 1.0;
        self.peak_wealth = 1.0;
        // The paper initialises the portfolio by average assignment.
        self.weights = vec![1.0 / m as f64; m];
        self.wealth_curve = vec![1.0];
    }

    /// The current decision day.
    pub fn current_day(&self) -> usize {
        self.t
    }

    /// Days remaining until the episode ends.
    pub fn remaining_steps(&self) -> usize {
        (self.end - 1).saturating_sub(self.t)
    }

    /// Current wealth (starts at 1.0).
    pub fn wealth(&self) -> f64 {
        self.wealth
    }

    /// Portfolio weights currently held (post-drift from last step).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Highest wealth reached so far (starts at 1.0).
    pub fn peak_wealth(&self) -> f64 {
        self.peak_wealth
    }

    /// Current drawdown from the wealth peak, in `[0, 1]`.
    pub fn drawdown(&self) -> f64 {
        1.0 - self.wealth / self.peak_wealth
    }

    /// Wealth recorded after every step (first element 1.0).
    pub fn wealth_curve(&self) -> &[f64] {
        &self.wealth_curve
    }

    /// Captures the mutable episode state for checkpointing.
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            t: self.t,
            wealth: self.wealth,
            peak_wealth: self.peak_wealth,
            weights: self.weights.clone(),
        }
    }

    /// Restores episode state captured by [`PortfolioEnv::snapshot`]. The
    /// wealth curve restarts from the restored wealth (history before the
    /// snapshot is not retained).
    ///
    /// # Panics
    /// Panics when the snapshot's day lies outside this environment's span
    /// or its weight vector length mismatches the asset count.
    pub fn restore(&mut self, snap: &EnvSnapshot) {
        assert!(
            snap.t >= self.start && snap.t < self.end,
            "snapshot day {} outside span [{}, {})",
            snap.t,
            self.start,
            self.end
        );
        assert_eq!(
            snap.weights.len(),
            self.panel.num_assets(),
            "snapshot weight count mismatches panel"
        );
        self.t = snap.t;
        self.wealth = snap.wealth;
        self.peak_wealth = snap.peak_wealth;
        self.weights = snap.weights.clone();
        self.wealth_curve = vec![snap.wealth];
    }

    /// The underlying panel.
    pub fn panel(&self) -> &AssetPanel {
        self.panel
    }

    /// Environment configuration.
    pub fn config(&self) -> EnvConfig {
        self.cfg
    }

    /// The normalised `[m, d, z]` observation for the current day.
    pub fn observation(&self) -> Vec<f64> {
        self.panel.normalized_window(self.t, self.cfg.window)
    }

    /// Rebalances to `action` (projected onto the simplex defensively),
    /// advances one day and returns the realised reward.
    ///
    /// # Panics
    /// Panics if called after the episode finished or the action length
    /// mismatches the asset count.
    pub fn step(&mut self, action: &[f64]) -> StepResult {
        assert!(self.t + 1 < self.end, "step after episode end");
        let m = self.panel.num_assets();
        assert_eq!(
            action.len(),
            m,
            "action length {} vs assets {m}",
            action.len()
        );
        let target = project_to_simplex(action);

        // Transaction cost on turnover vs current (drifted) weights.
        let turnover: f64 = target
            .iter()
            .zip(&self.weights)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
        let cost_factor = 1.0 - self.cfg.transaction_cost * turnover;

        // Realise next-day growth.
        let rel = self.panel.price_relatives(self.t + 1);
        let growth: f64 = target.iter().zip(&rel).map(|(w, r)| w * r).sum();
        let net = (growth * cost_factor).max(1e-9);
        self.wealth *= net;
        self.wealth_curve.push(self.wealth);

        // Weights drift with prices.
        let mut drifted: Vec<f64> = target.iter().zip(&rel).map(|(w, r)| w * r).collect();
        let norm: f64 = drifted.iter().sum();
        if norm > 0.0 {
            drifted.iter_mut().for_each(|w| *w /= norm);
        }
        self.weights = drifted;

        self.t += 1;
        let result = StepResult {
            reward: net.ln(),
            simple_return: net - 1.0,
            done: self.t + 1 >= self.end,
        };
        // Drawdown state must not depend on whether telemetry is attached.
        self.peak_wealth = self.peak_wealth.max(self.wealth);
        if self.telemetry.is_enabled() {
            self.telemetry.emit(
                Record::new("env.step")
                    .with("t", self.t - 1)
                    .with("reward", result.reward)
                    .with("turnover", turnover)
                    .with("wealth", self.wealth)
                    .with("concentration", weight_concentration(&target))
                    .with("drawdown", 1.0 - self.wealth / self.peak_wealth),
            );
        }
        result
    }
}

/// Herfindahl–Hirschman concentration of a portfolio: `Σ w_i²`, ranging
/// from `1/m` (uniform) to 1 (single asset).
pub fn weight_concentration(w: &[f64]) -> f64 {
    w.iter().map(|x| x * x).sum()
}

/// Projects an arbitrary vector onto the probability simplex by clamping
/// negatives to zero and renormalising; falls back to uniform weights when
/// everything is non-positive or non-finite.
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    let m = v.len();
    let mut w: Vec<f64> = v
        .iter()
        .map(|&x| if x.is_finite() && x > 0.0 { x } else { 0.0 })
        .collect();
    let sum: f64 = w.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / m as f64; m];
    }
    w.iter_mut().for_each(|x| *x /= sum);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn episode_walks_to_end() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 0.0,
        };
        let mut env = PortfolioEnv::new(&p, cfg, 20, 40);
        let mut steps = 0;
        loop {
            let m = p.num_assets();
            let r = env.step(&vec![1.0 / m as f64; m]);
            steps += 1;
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 19);
        assert_eq!(env.wealth_curve().len(), 20);
    }

    #[test]
    fn uniform_weights_track_index_without_costs() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let mut env = PortfolioEnv::new(&p, cfg, 10, 30);
        let m = p.num_assets();
        let uniform = vec![1.0 / m as f64; m];
        let mut wealth_check = 1.0;
        for t in 10..29 {
            let r = env.step(&uniform);
            let rel = p.price_relatives(t + 1);
            let expect: f64 = rel.iter().sum::<f64>() / m as f64;
            wealth_check *= expect;
            assert!((r.simple_return - (expect - 1.0)).abs() < 1e-12);
        }
        assert!((env.wealth() - wealth_check).abs() < 1e-9);
    }

    #[test]
    fn transaction_costs_reduce_wealth() {
        let p = panel();
        let free = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let costly = EnvConfig {
            window: 5,
            transaction_cost: 0.01,
        };
        let m = p.num_assets();
        // Alternate concentrated positions to force turnover.
        let run = |cfg: EnvConfig| {
            let mut env = PortfolioEnv::new(&p, cfg, 10, 40);
            for t in 0.. {
                let mut a = vec![0.0; m];
                a[t % m] = 1.0;
                if env.step(&a).done {
                    break;
                }
            }
            env.wealth()
        };
        assert!(run(costly) < run(free));
    }

    #[test]
    fn reward_is_log_of_net_growth() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let mut env = PortfolioEnv::new(&p, cfg, 10, 15);
        let m = p.num_assets();
        let r = env.step(&vec![1.0 / m as f64; m]);
        assert!((r.reward - (1.0 + r.simple_return).ln()).abs() < 1e-12);
    }

    #[test]
    fn observation_shape() {
        let p = panel();
        let cfg = EnvConfig {
            window: 8,
            transaction_cost: 0.0,
        };
        let env = PortfolioEnv::new(&p, cfg, 20, 40);
        assert_eq!(env.observation().len(), 4 * 4 * 8); // m·d·z
    }

    #[test]
    fn simplex_projection_properties() {
        let w = project_to_simplex(&[0.2, -1.0, 0.8, f64::NAN]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[3], 0.0);
        let uniform = project_to_simplex(&[-1.0, -2.0]);
        assert_eq!(uniform, vec![0.5, 0.5]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let mut env = PortfolioEnv::new(&p, cfg, 10, 30);
        let m = p.num_assets();
        env.step(&vec![1.0 / m as f64; m]);
        env.reset();
        assert_eq!(env.wealth(), 1.0);
        assert_eq!(env.current_day(), 10);
        assert_eq!(env.wealth_curve(), &[1.0]);
    }

    #[test]
    fn concentration_bounds() {
        assert!((weight_concentration(&[0.25; 4]) - 0.25).abs() < 1e-12);
        assert!((weight_concentration(&[1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_records_each_step() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 1e-3,
        };
        let (tel, sink) = Telemetry::memory();
        let mut env = PortfolioEnv::new(&p, cfg, 10, 20).with_telemetry(tel);
        let m = p.num_assets();
        let mut steps = 0;
        while !env.step(&vec![1.0 / m as f64; m]).done {
            steps += 1;
        }
        steps += 1;
        let records = sink.by_kind("env.step");
        assert_eq!(records.len(), steps);
        for r in &records {
            let dd = r.get_f64("drawdown").unwrap();
            assert!((0.0..=1.0).contains(&dd));
            assert!(r.get_f64("turnover").unwrap() >= 0.0);
            assert!(r.get_f64("concentration").unwrap() >= 1.0 / m as f64 - 1e-12);
        }
    }

    #[test]
    fn train_period_starts_at_first_decidable_day() {
        // The earliest day with a full window of history is `window - 1`
        // (its window spans days 0..window). The old code started one day
        // later, silently dropping the first decidable day.
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 0.0,
        };
        let env = PortfolioEnv::train_period(&p, cfg);
        assert_eq!(env.current_day(), 9);
        // And that day is genuinely legal for the window constraint.
        assert_eq!(env.observation().len(), 4 * 4 * 10);
    }

    #[test]
    fn peak_wealth_tracked_without_telemetry() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        // Two identical runs, one with telemetry, one without: drawdown
        // state must match exactly.
        let run = |tel: Option<Telemetry>| {
            let mut env = PortfolioEnv::new(&p, cfg, 10, 40);
            if let Some(t) = tel {
                env.set_telemetry(t);
            }
            let m = p.num_assets();
            while !env.step(&vec![1.0 / m as f64; m]).done {}
            (env.peak_wealth(), env.drawdown())
        };
        let (tel, _sink) = Telemetry::memory();
        let plain = run(None);
        let instrumented = run(Some(tel));
        assert_eq!(plain, instrumented);
        assert!(plain.0 >= 1.0, "peak never updated without telemetry");
        assert!((0.0..=1.0).contains(&plain.1));
    }

    #[test]
    fn snapshot_restore_resumes_episode_exactly() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 1e-3,
        };
        let m = p.num_assets();
        let actions: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let mut a = vec![0.1; m];
                a[i % m] = 1.0;
                a
            })
            .collect();
        // Straight run.
        let mut straight = PortfolioEnv::new(&p, cfg, 10, 40);
        for a in &actions {
            straight.step(a);
        }
        // Split run: snapshot after 8 steps, restore into a fresh env.
        let mut first = PortfolioEnv::new(&p, cfg, 10, 40);
        for a in &actions[..8] {
            first.step(a);
        }
        let snap = first.snapshot();
        let mut resumed = PortfolioEnv::new(&p, cfg, 10, 40);
        resumed.restore(&snap);
        for a in &actions[8..] {
            resumed.step(a);
        }
        assert_eq!(straight.wealth(), resumed.wealth());
        assert_eq!(straight.current_day(), resumed.current_day());
        assert_eq!(straight.weights(), resumed.weights());
        assert_eq!(straight.peak_wealth(), resumed.peak_wealth());
    }

    #[test]
    #[should_panic(expected = "after episode end")]
    fn stepping_past_end_panics() {
        let p = panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let mut env = PortfolioEnv::new(&p, cfg, 10, 12);
        let m = p.num_assets();
        let uniform = vec![1.0 / m as f64; m];
        let r = env.step(&uniform);
        assert!(r.done);
        let _ = env.step(&uniform);
    }
}
