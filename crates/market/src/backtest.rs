//! Backtesting harness shared by every strategy in the workspace.

use crate::env::{project_to_simplex, weight_concentration, EnvConfig};
use crate::metrics::{compute, Metrics};
use crate::panel::AssetPanel;
use cit_telemetry::{Record, Telemetry};

/// Everything a strategy may look at when deciding the portfolio for the
/// *next* day: history up to and including day `t`, never beyond.
pub struct DecisionContext<'a> {
    /// The full panel (look only at days ≤ `t`!).
    pub panel: &'a AssetPanel,
    /// The current day index.
    pub t: usize,
    /// Weights currently held (after price drift).
    pub prev_weights: &'a [f64],
    /// The backtest's look-back window length.
    pub window: usize,
}

/// A portfolio-selection strategy.
pub trait Strategy {
    /// Display name used in result tables.
    fn name(&self) -> String;

    /// Called once before a backtest with the asset count.
    fn reset(&mut self, _num_assets: usize) {}

    /// Returns the target portfolio for day `t+1`; will be projected onto
    /// the simplex by the harness.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64>;
}

/// Output of [`run_backtest`].
#[derive(Debug, Clone)]
pub struct BacktestResult {
    /// Strategy name.
    pub name: String,
    /// Wealth after each day, starting at 1.0.
    pub wealth: Vec<f64>,
    /// Daily simple returns (net of costs).
    pub daily_returns: Vec<f64>,
    /// The weight vector used each day.
    pub weights: Vec<Vec<f64>>,
    /// Summary metrics.
    pub metrics: Metrics,
}

/// Runs `strategy` over `[start, end)` of the panel with the given
/// environment configuration, returning the wealth curve and metrics.
///
/// # Panics
/// Panics on invalid spans (see [`crate::env::PortfolioEnv::new`]).
pub fn run_backtest(
    panel: &AssetPanel,
    cfg: EnvConfig,
    start: usize,
    end: usize,
    strategy: &mut dyn Strategy,
) -> BacktestResult {
    run_backtest_with(panel, cfg, start, end, strategy, &Telemetry::disabled())
}

/// [`run_backtest`] with diagnostics: emits one `backtest.step` record per
/// day (reward, turnover, weight concentration, drawdown) plus a final
/// `backtest.result` summary, and times each strategy decision under the
/// `backtest.decide` span histogram.
pub fn run_backtest_with(
    panel: &AssetPanel,
    cfg: EnvConfig,
    start: usize,
    end: usize,
    strategy: &mut dyn Strategy,
    telemetry: &Telemetry,
) -> BacktestResult {
    assert!(
        start + 1 < end && end <= panel.num_days(),
        "invalid backtest span"
    );
    let m = panel.num_assets();
    strategy.reset(m);

    let mut wealth = 1.0f64;
    let mut peak = 1.0f64;
    let mut curve = vec![1.0f64];
    let mut daily = Vec::with_capacity(end - start - 1);
    let mut weights_hist = Vec::with_capacity(end - start - 1);
    let mut held = vec![1.0 / m as f64; m];

    for t in start..end - 1 {
        let ctx = DecisionContext {
            panel,
            t,
            prev_weights: &held,
            window: cfg.window,
        };
        let decided = {
            let _timer = telemetry.span("backtest.decide");
            strategy.decide(&ctx)
        };
        let target = project_to_simplex(&decided);
        let turnover: f64 = target.iter().zip(&held).map(|(a, b)| (a - b).abs()).sum();
        let cost_factor = 1.0 - cfg.transaction_cost * turnover;
        let rel = panel.price_relatives(t + 1);
        let growth: f64 = target.iter().zip(&rel).map(|(w, r)| w * r).sum();
        let net = (growth * cost_factor).max(1e-9);
        wealth *= net;
        curve.push(wealth);
        daily.push(net - 1.0);
        if telemetry.is_enabled() {
            peak = peak.max(wealth);
            telemetry.emit(
                Record::new("backtest.step")
                    .with("t", t)
                    .with("reward", net.ln())
                    .with("turnover", turnover)
                    .with("wealth", wealth)
                    .with("concentration", weight_concentration(&target))
                    .with("drawdown", 1.0 - wealth / peak),
            );
        }
        // Drift.
        let mut drifted: Vec<f64> = target.iter().zip(&rel).map(|(w, r)| w * r).collect();
        let norm: f64 = drifted.iter().sum();
        if norm > 0.0 {
            drifted.iter_mut().for_each(|w| *w /= norm);
        }
        held = drifted;
        weights_hist.push(target);
    }

    let metrics = compute(&curve, &daily);
    if telemetry.is_enabled() {
        telemetry.emit(
            Record::new("backtest.result")
                .with("strategy", strategy.name())
                .with("final_wealth", wealth)
                .with("ar", metrics.ar)
                .with("sr", metrics.sr)
                .with("cr", metrics.cr)
                .with("mdd", metrics.mdd),
        );
    }
    BacktestResult {
        name: strategy.name(),
        wealth: curve,
        daily_returns: daily,
        weights: weights_hist,
        metrics,
    }
}

/// Runs a backtest over the panel's test period.
pub fn run_test_period(
    panel: &AssetPanel,
    cfg: EnvConfig,
    strategy: &mut dyn Strategy,
) -> BacktestResult {
    run_backtest(panel, cfg, panel.test_start(), panel.num_days(), strategy)
}

/// [`run_test_period`] with per-step diagnostics (see
/// [`run_backtest_with`]).
pub fn run_test_period_with(
    panel: &AssetPanel,
    cfg: EnvConfig,
    strategy: &mut dyn Strategy,
    telemetry: &Telemetry,
) -> BacktestResult {
    run_backtest_with(
        panel,
        cfg,
        panel.test_start(),
        panel.num_days(),
        strategy,
        telemetry,
    )
}

/// The uniform buy-and-rebalance benchmark ("Market" uses the index; this
/// is CRP with uniform weights, also handy in tests).
pub struct UniformStrategy;

impl Strategy for UniformStrategy {
    fn name(&self) -> String {
        "Uniform".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        vec![1.0 / ctx.panel.num_assets() as f64; ctx.panel.num_assets()]
    }
}

/// The market index expressed as a [`BacktestResult`] so it can sit in the
/// same tables as strategies (buy equal amounts on day `start`, never
/// rebalance).
pub fn market_result(panel: &AssetPanel, start: usize, end: usize) -> BacktestResult {
    assert!(start + 1 < end && end <= panel.num_days(), "invalid span");
    let m = panel.num_assets();
    let base = panel.closes(start);
    let mut curve = Vec::with_capacity(end - start);
    for t in start..end {
        let closes = panel.closes(t);
        let v = closes.iter().zip(&base).map(|(c, b)| c / b).sum::<f64>() / m as f64;
        curve.push(v);
    }
    let daily: Vec<f64> = curve.windows(2).map(|w| w[1] / w[0] - 1.0).collect();
    let metrics = compute(&curve, &daily);
    BacktestResult {
        name: "Market".to_string(),
        wealth: curve,
        daily_returns: daily,
        weights: Vec::new(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 5,
            num_days: 200,
            test_start: 150,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn uniform_backtest_runs() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 1e-3,
        };
        let res = run_test_period(&p, cfg, &mut UniformStrategy);
        assert_eq!(res.wealth.len(), p.num_days() - p.test_start());
        assert_eq!(res.daily_returns.len(), res.wealth.len() - 1);
        assert!(res.metrics.mdd >= 0.0 && res.metrics.mdd <= 1.0);
    }

    #[test]
    fn weights_recorded_are_simplex() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 0.0,
        };
        let res = run_backtest(&p, cfg, 20, 60, &mut UniformStrategy);
        for w in &res.weights {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn market_result_matches_index_shape() {
        let p = panel();
        let res = market_result(&p, p.test_start(), p.num_days());
        assert!((res.wealth[0] - 1.0).abs() < 1e-12);
        assert_eq!(res.wealth.len(), p.num_days() - p.test_start());
    }

    #[test]
    fn wealth_consistent_with_daily_returns() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 1e-3,
        };
        let res = run_backtest(&p, cfg, 30, 80, &mut UniformStrategy);
        let mut w = 1.0;
        for (i, r) in res.daily_returns.iter().enumerate() {
            w *= 1.0 + r;
            assert!((w - res.wealth[i + 1]).abs() < 1e-9);
        }
    }

    /// A deliberately bad strategy should not crash the harness — outputs
    /// get projected to the simplex.
    struct BadStrategy;
    impl Strategy for BadStrategy {
        fn name(&self) -> String {
            "Bad".to_string()
        }
        fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
            vec![f64::NAN; ctx.panel.num_assets()]
        }
    }

    #[test]
    fn telemetry_emits_steps_and_summary() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 1e-3,
        };
        let (tel, sink) = Telemetry::memory();
        let res = run_backtest_with(&p, cfg, 20, 60, &mut UniformStrategy, &tel);
        let steps = sink.by_kind("backtest.step");
        assert_eq!(steps.len(), res.daily_returns.len());
        let summary = sink.by_kind("backtest.result");
        assert_eq!(summary.len(), 1);
        assert!((summary[0].get_f64("ar").unwrap() - res.metrics.ar).abs() < 1e-12);
        // Every decision was timed.
        assert_eq!(
            tel.span_histogram("backtest.decide").count() as usize,
            steps.len()
        );
    }

    #[test]
    fn nan_actions_fall_back_to_uniform() {
        let p = panel();
        let cfg = EnvConfig {
            window: 10,
            transaction_cost: 0.0,
        };
        let bad = run_backtest(&p, cfg, 20, 50, &mut BadStrategy);
        let uni = run_backtest(&p, cfg, 20, 50, &mut UniformStrategy);
        for (a, b) in bad.wealth.iter().zip(&uni.wealth) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
