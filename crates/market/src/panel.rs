//! The asset panel: OHLC price history for `m` assets over `T` days.

/// Feature indices within a panel (the paper uses `d = 4` OHLC features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// Opening price.
    Open = 0,
    /// Daily high.
    High = 1,
    /// Daily low.
    Low = 2,
    /// Closing price.
    Close = 3,
}

/// Number of per-asset features stored in a panel.
pub const NUM_FEATURES: usize = 4;

/// Why a buffer cannot form a valid [`AssetPanel`]
/// (see [`AssetPanel::try_new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanelError {
    /// Fewer than two days or zero assets.
    Empty(String),
    /// Buffer length does not equal `T·m·d`.
    SizeMismatch(String),
    /// A price is NaN, infinite, zero or negative. The environment's
    /// return computations divide by prices, so a dirty panel must go
    /// through [`crate::quality`] validation/repair first.
    DirtyPrice(String),
    /// `test_start` is not inside `[0, T)`.
    BadSplit(String),
}

impl std::fmt::Display for PanelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanelError::Empty(m)
            | PanelError::SizeMismatch(m)
            | PanelError::DirtyPrice(m)
            | PanelError::BadSplit(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PanelError {}

/// A dense panel of daily OHLC prices: `data[(t, i, f)]` with `T` days,
/// `m` assets and [`NUM_FEATURES`] features, plus a train/test split index.
#[derive(Debug, Clone)]
pub struct AssetPanel {
    name: String,
    num_days: usize,
    num_assets: usize,
    /// Row-major `[T, m, d]`.
    data: Vec<f64>,
    /// First day index that belongs to the test period.
    test_start: usize,
    asset_names: Vec<String>,
}

impl AssetPanel {
    /// Builds a panel from raw `[T, m, d]` data.
    ///
    /// # Panics
    /// Panics if the buffer length is not `T·m·d`, the panel is empty, any
    /// price is non-positive/non-finite, or `test_start` is out of range.
    pub fn new(
        name: impl Into<String>,
        num_days: usize,
        num_assets: usize,
        data: Vec<f64>,
        test_start: usize,
    ) -> Self {
        Self::try_new(name, num_days, num_assets, data, test_start)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a panel from raw `[T, m, d]` data, returning a typed
    /// [`PanelError`] instead of panicking. This is the only constructor —
    /// [`AssetPanel::new`] delegates here — so a `PortfolioEnv` can never
    /// be built over non-positive or non-finite prices; dirty feeds go
    /// through [`crate::quality`] validation/repair first.
    pub fn try_new(
        name: impl Into<String>,
        num_days: usize,
        num_assets: usize,
        data: Vec<f64>,
        test_start: usize,
    ) -> Result<Self, PanelError> {
        if num_days < 2 {
            return Err(PanelError::Empty("panel needs at least two days".into()));
        }
        if num_assets < 1 {
            return Err(PanelError::Empty("panel needs at least one asset".into()));
        }
        if data.len() != num_days * num_assets * NUM_FEATURES {
            return Err(PanelError::SizeMismatch(format!(
                "panel buffer size mismatch: {} values for {num_days}×{num_assets}×{NUM_FEATURES}",
                data.len()
            )));
        }
        if let Some(pos) = data.iter().position(|p| !(p.is_finite() && *p > 0.0)) {
            let (t, rest) = (
                pos / (num_assets * NUM_FEATURES),
                pos % (num_assets * NUM_FEATURES),
            );
            return Err(PanelError::DirtyPrice(format!(
                "panel prices must be positive and finite: value {} at day {t}, asset {}",
                data[pos],
                rest / NUM_FEATURES
            )));
        }
        if test_start >= num_days {
            return Err(PanelError::BadSplit("test_start out of range".into()));
        }
        let asset_names = (0..num_assets).map(|i| format!("A{i:03}")).collect();
        Ok(AssetPanel {
            name: name.into(),
            num_days,
            num_assets,
            data,
            test_start,
            asset_names,
        })
    }

    /// Dataset label (e.g. "US", "HK", "CN").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of trading days `T`.
    pub fn num_days(&self) -> usize {
        self.num_days
    }

    /// Number of assets `m`.
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// First day of the test period.
    pub fn test_start(&self) -> usize {
        self.test_start
    }

    /// Names of the assets.
    pub fn asset_names(&self) -> &[String] {
        &self.asset_names
    }

    /// Overrides asset names (e.g. when loading real tickers from CSV).
    ///
    /// # Panics
    /// Panics if the name count does not match the asset count.
    pub fn set_asset_names(&mut self, names: Vec<String>) {
        assert_eq!(names.len(), self.num_assets, "asset name count mismatch");
        self.asset_names = names;
    }

    /// Price of feature `f` for asset `i` on day `t`.
    #[inline]
    pub fn price(&self, t: usize, i: usize, f: Feature) -> f64 {
        self.data[(t * self.num_assets + i) * NUM_FEATURES + f as usize]
    }

    /// Closing price of asset `i` on day `t`.
    #[inline]
    pub fn close(&self, t: usize, i: usize) -> f64 {
        self.price(t, i, Feature::Close)
    }

    /// Vector of closing prices on day `t`.
    pub fn closes(&self, t: usize) -> Vec<f64> {
        (0..self.num_assets).map(|i| self.close(t, i)).collect()
    }

    /// Per-asset price relatives `close(t) / close(t-1)`.
    ///
    /// # Panics
    /// Panics when `t == 0`.
    pub fn price_relatives(&self, t: usize) -> Vec<f64> {
        assert!(t >= 1, "price_relatives needs t >= 1");
        (0..self.num_assets)
            .map(|i| self.close(t, i) / self.close(t - 1, i))
            .collect()
    }

    /// Growth ratios `close(t)/close(t-1) − 1` (the paper's `x_t`).
    pub fn growth_ratios(&self, t: usize) -> Vec<f64> {
        self.price_relatives(t)
            .into_iter()
            .map(|r| r - 1.0)
            .collect()
    }

    /// A normalised feature window for RL states: for each asset and OHLC
    /// feature, the `z` most recent values ending at day `t`, divided by the
    /// asset's closing price on day `t` and shifted by −1 (so values hover
    /// around zero). Layout `[m, d, z]`, row-major.
    ///
    /// # Panics
    /// Panics when fewer than `z` days of history exist at `t`.
    pub fn normalized_window(&self, t: usize, z: usize) -> Vec<f64> {
        assert!(
            t + 1 >= z,
            "normalized_window: need {z} days of history at t={t}"
        );
        assert!(t < self.num_days, "normalized_window: t out of range");
        let m = self.num_assets;
        let mut out = Vec::with_capacity(m * NUM_FEATURES * z);
        for i in 0..m {
            let anchor = self.close(t, i);
            for f in [Feature::Open, Feature::High, Feature::Low, Feature::Close] {
                for s in 0..z {
                    let day = t + 1 - z + s;
                    out.push(self.price(day, i, f) / anchor - 1.0);
                }
            }
        }
        out
    }

    /// The closing-price series of asset `i` over `[t+1−z, t]`.
    pub fn close_window(&self, t: usize, i: usize, z: usize) -> Vec<f64> {
        assert!(
            t + 1 >= z,
            "close_window: need {z} days of history at t={t}"
        );
        (t + 1 - z..=t).map(|day| self.close(day, i)).collect()
    }

    /// Equal-weight buy-and-hold index over the whole panel, normalised to
    /// 1.0 on day 0 — the "Market" row of Table III.
    pub fn index_curve(&self) -> Vec<f64> {
        let base = self.closes(0);
        (0..self.num_days)
            .map(|t| {
                let closes = self.closes(t);
                closes.iter().zip(&base).map(|(c, b)| c / b).sum::<f64>() / self.num_assets as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_panel() -> AssetPanel {
        // 3 days, 2 assets: closes asset0 = 10, 11, 12.1 ; asset1 = 20, 19, 19.
        let mut data = Vec::new();
        let closes = [[10.0, 20.0], [11.0, 19.0], [12.1, 19.0]];
        for day in &closes {
            for &c in day {
                data.extend_from_slice(&[c * 0.99, c * 1.01, c * 0.98, c]);
            }
        }
        AssetPanel::new("tiny", 3, 2, data, 2)
    }

    #[test]
    fn accessors() {
        let p = tiny_panel();
        assert_eq!(p.num_days(), 3);
        assert_eq!(p.num_assets(), 2);
        assert_eq!(p.close(1, 0), 11.0);
        assert_eq!(p.price(1, 1, Feature::High), 19.0 * 1.01);
        assert_eq!(p.test_start(), 2);
    }

    #[test]
    fn price_relatives_match_hand_computation() {
        let p = tiny_panel();
        let r = p.price_relatives(1);
        assert!((r[0] - 1.1).abs() < 1e-12);
        assert!((r[1] - 0.95).abs() < 1e-12);
        let g = p.growth_ratios(2);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!(g[1].abs() < 1e-12);
    }

    #[test]
    fn normalized_window_layout_and_anchor() {
        let p = tiny_panel();
        let w = p.normalized_window(2, 2);
        assert_eq!(w.len(), 2 * NUM_FEATURES * 2);
        // Asset 0, Close feature, last slot = close(2)/close(2) - 1 = 0.
        let close_row_start = (Feature::Close as usize) * 2; // asset 0 row
        assert!((w[close_row_start + 1]).abs() < 1e-12);
        // Previous close: 11 / 12.1 - 1.
        assert!((w[close_row_start] - (11.0 / 12.1 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn index_curve_starts_at_one() {
        let p = tiny_panel();
        let idx = p.index_curve();
        assert!((idx[0] - 1.0).abs() < 1e-12);
        // Day 1: (11/10 + 19/20)/2 = (1.1 + 0.95)/2
        assert!((idx[1] - 1.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_prices() {
        let _ = AssetPanel::new("bad", 2, 1, vec![1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0], 1);
    }

    #[test]
    fn close_window_is_chronological() {
        let p = tiny_panel();
        assert_eq!(p.close_window(2, 0, 3), vec![10.0, 11.0, 12.1]);
    }
}
