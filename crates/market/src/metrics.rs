//! Evaluation metrics of the paper (Section V-A): accumulative return,
//! Sharpe ratio, maximum drawdown and Calmar ratio.

/// Trading days per year, used for annualisation.
pub const TRADING_DAYS: f64 = 252.0;

/// Performance summary of one backtest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Accumulative return: final wealth / initial wealth − 1.
    pub ar: f64,
    /// Annualised Sharpe ratio `E(r)/σ(r)·√252` of daily returns.
    pub sr: f64,
    /// Maximum drawdown of the wealth curve, in `[0, 1]`.
    pub mdd: f64,
    /// Calmar ratio: annualised return / maximum drawdown.
    pub cr: f64,
}

/// Bound on the Calmar ratio's magnitude. Near-zero drawdowns would
/// otherwise blow the ratio up to ~1e8-scale values that leak into results
/// tables and dominate any averaging; real strategies never sustain a
/// Calmar anywhere close to this, so the clamp is inert for honest curves.
pub const CALMAR_CAP: f64 = 1e3;

/// Accumulative return of a wealth curve normalised to the first element.
///
/// Returns 0 for curves with fewer than two points (no completed step).
pub fn accumulative_return(wealth: &[f64]) -> f64 {
    if wealth.len() < 2 {
        return 0.0;
    }
    wealth.last().expect("non-empty") / wealth[0] - 1.0
}

/// Annualised Sharpe ratio of a daily-return series (risk-free rate 0).
///
/// Returns 0 for a constant series.
pub fn sharpe_ratio(daily_returns: &[f64]) -> f64 {
    if daily_returns.len() < 2 {
        return 0.0;
    }
    let n = daily_returns.len() as f64;
    let mean = daily_returns.iter().sum::<f64>() / n;
    let var = daily_returns
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f64>()
        / (n - 1.0);
    // Guard against numerically-zero variance of constant series.
    if var <= 1e-18 {
        return 0.0;
    }
    mean / var.sqrt() * TRADING_DAYS.sqrt()
}

/// Maximum drawdown of a wealth curve: `max_t (peak_t − w_t) / peak_t`.
pub fn max_drawdown(wealth: &[f64]) -> f64 {
    let mut peak = f64::MIN;
    let mut mdd = 0.0f64;
    for &w in wealth {
        peak = peak.max(w);
        if peak > 0.0 {
            mdd = mdd.max((peak - w) / peak);
        }
    }
    mdd
}

/// Annualised return of a wealth curve.
///
/// Returns 0 for curves with fewer than two points (no completed step).
pub fn annualized_return(wealth: &[f64]) -> f64 {
    if wealth.len() < 2 {
        return 0.0;
    }
    let total = wealth.last().expect("non-empty") / wealth[0];
    let years = (wealth.len() - 1) as f64 / TRADING_DAYS;
    if total <= 0.0 {
        return -1.0;
    }
    total.powf(1.0 / years) - 1.0
}

/// Calmar ratio: annualised return over maximum drawdown, clamped to
/// `±`[`CALMAR_CAP`]. A drawdown-free curve maps to `±CALMAR_CAP` (sign of
/// the annualised return, 0 when flat) instead of the astronomically large
/// values a raw `ann / ε` fallback would produce.
pub fn calmar_ratio(wealth: &[f64]) -> f64 {
    let ann = annualized_return(wealth);
    let mdd = max_drawdown(wealth);
    let raw = if mdd < 1e-9 {
        if ann == 0.0 {
            0.0
        } else {
            ann.signum() * CALMAR_CAP
        }
    } else {
        ann / mdd
    };
    raw.clamp(-CALMAR_CAP, CALMAR_CAP)
}

/// Computes all metrics from a wealth curve and its daily returns.
pub fn compute(wealth: &[f64], daily_returns: &[f64]) -> Metrics {
    Metrics {
        ar: accumulative_return(wealth),
        sr: sharpe_ratio(daily_returns),
        mdd: max_drawdown(wealth),
        cr: calmar_ratio(wealth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_simple() {
        assert!((accumulative_return(&[1.0, 1.1, 1.31]) - 0.31).abs() < 1e-12);
        assert!((accumulative_return(&[2.0, 1.0]) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharpe_zero_for_constant_returns() {
        assert_eq!(sharpe_ratio(&[0.01; 10]), 0.0);
        assert_eq!(sharpe_ratio(&[0.01]), 0.0);
    }

    #[test]
    fn sharpe_positive_for_positive_drift() {
        let rets: Vec<f64> = (0..100)
            .map(|i| 0.001 + 0.002 * ((i % 3) as f64 - 1.0))
            .collect();
        assert!(sharpe_ratio(&rets) > 0.0);
    }

    #[test]
    fn sharpe_sign_flips_with_drift() {
        let up: Vec<f64> = (0..50).map(|i| 0.002 + 0.001 * ((i % 2) as f64)).collect();
        let down: Vec<f64> = up.iter().map(|r| -r).collect();
        assert!(sharpe_ratio(&up) > 0.0);
        assert!(sharpe_ratio(&down) < 0.0);
    }

    #[test]
    fn mdd_known_curve() {
        // Peak 2.0 then trough 1.0 → 50% drawdown.
        let w = [1.0, 2.0, 1.5, 1.0, 1.8];
        assert!((max_drawdown(&w) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mdd_monotone_curve_is_zero() {
        assert_eq!(max_drawdown(&[1.0, 1.1, 1.2, 1.3]), 0.0);
    }

    #[test]
    fn mdd_bounded() {
        let w = [1.0, 0.0001, 2.0, 0.5];
        let m = max_drawdown(&w);
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn annualized_return_one_year_identity() {
        // 253 points = 252 daily steps = exactly one year.
        let w: Vec<f64> = (0..253).map(|i| 1.0 + 0.2 * i as f64 / 252.0).collect();
        assert!((annualized_return(&w) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn calmar_capped_for_drawdown_free_curves() {
        // Monotone rise: mdd = 0 → the old code returned ann/1e-9 ≈ 1e8+.
        let up: Vec<f64> = (0..100).map(|i| 1.0 + 0.001 * i as f64).collect();
        assert_eq!(calmar_ratio(&up), CALMAR_CAP);
        // Flat curve: no return, no drawdown → 0, not NaN or ±cap.
        assert_eq!(calmar_ratio(&[1.0, 1.0, 1.0]), 0.0);
        // Tiny but nonzero drawdown still clamps.
        let w = [1.0, 2.0, 2.0 - 1e-12, 4.0];
        assert!(calmar_ratio(&w).abs() <= CALMAR_CAP);
    }

    #[test]
    fn short_curves_are_safe_not_panicking() {
        assert_eq!(accumulative_return(&[]), 0.0);
        assert_eq!(accumulative_return(&[1.0]), 0.0);
        assert_eq!(annualized_return(&[]), 0.0);
        assert_eq!(annualized_return(&[1.0]), 0.0);
        let m = compute(&[1.0], &[]);
        assert_eq!(m.ar, 0.0);
        assert_eq!(m.cr, 0.0);
    }

    #[test]
    fn calmar_sign_matches_return() {
        let up = [1.0, 0.95, 1.3];
        assert!(calmar_ratio(&up) > 0.0);
        let down = [1.0, 0.9, 0.8];
        assert!(calmar_ratio(&down) < 0.0);
    }

    #[test]
    fn compute_bundles_consistently() {
        let wealth = [1.0, 1.02, 0.99, 1.05];
        let rets = [0.02, -0.0294117, 0.0606060];
        let m = compute(&wealth, &rets);
        assert!((m.ar - 0.05).abs() < 1e-9);
        assert_eq!(m.mdd, max_drawdown(&wealth));
    }
}
