//! Micro-benchmarks for every performance-relevant component, including
//! the ablation benches called out in DESIGN.md §5: autodiff overhead,
//! DWT decomposition, TCN/attention forward+backward, environment
//! stepping, and short cross-insight training bursts per critic mode.
//!
//! The harness is hand-rolled (`harness = false`): the build resolves
//! offline, so criterion is unavailable. Each bench is calibrated to a
//! minimum measurement window, the best-of-rounds ns/iter is printed to
//! stdout, and a machine-readable `bench.result` record per bench lands
//! in `results/components_bench_run.jsonl` via `cit-telemetry`.

use cit_bench::{experiment_telemetry, finish_run, Scale};
use cit_core::{horizon_windows, raw_window, CitConfig, CrossInsightTrader};
use cit_dwt::{decompose, horizon_scales, reconstruct, SlidingDwt};
use cit_market::{DecisionContext, EnvConfig, PortfolioEnv, Strategy, SynthConfig};
use cit_nn::{Ctx, ParamStore, SpatialAttention, Tcn};
use cit_online::{Olmar, Rmr};
use cit_telemetry::{Record, Telemetry};
use cit_tensor::kernels::{matmul_nn, matmul_nt, matmul_ref, matmul_tn};
use cit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement rounds; the reported ns/iter is the fastest round.
const ROUNDS: usize = 5;

struct Harness {
    tel: Telemetry,
    /// `--quick` smoke mode: tiny measurement windows, kernel sections
    /// only — used by CI to assert the harness and the JSON manifest work.
    quick: bool,
    /// `(name, ns_per_iter)` of every completed bench, for the manifest.
    results: RefCell<Vec<(String, f64)>>,
}

impl Harness {
    fn new() -> Self {
        // `cargo bench` passes extra flags (e.g. `--bench`); only the
        // `--quick` switch is recognised, everything else is ignored.
        Harness {
            tel: experiment_telemetry("components_bench", Scale::Smoke, 0),
            quick: std::env::args().any(|a| a == "--quick"),
            results: RefCell::new(Vec::new()),
        }
    }

    /// Minimum timed window per measurement round.
    fn min_window(&self) -> Duration {
        if self.quick {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(20)
        }
    }

    /// Times `f`, doubling the iteration count until one round fills the
    /// measurement window, then reports the fastest of [`ROUNDS`] rounds.
    fn bench(&self, name: &str, mut f: impl FnMut()) {
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            if t0.elapsed() >= self.min_window() || iters >= 1 << 22 {
                break;
            }
            iters *= 2;
        }
        let rounds = if self.quick { 2 } else { ROUNDS };
        let mut best = Duration::MAX;
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t0.elapsed());
        }
        self.report(name, iters, best.as_secs_f64() / iters as f64);
    }

    /// Times `routine` over fresh `setup()` state per batch (setup
    /// excluded from the measurement) — for stateful work like training
    /// bursts that cannot be repeated on the same value.
    fn bench_batched<T>(
        &self,
        name: &str,
        batches: usize,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T),
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..batches {
            let state = setup();
            let t0 = Instant::now();
            routine(state);
            total += t0.elapsed();
        }
        self.report(name, batches as u64, total.as_secs_f64() / batches as f64);
    }

    fn report(&self, name: &str, iters: u64, secs_per_iter: f64) {
        println!(
            "{name:<40} {:>14.1} ns/iter  ({iters} iters)",
            secs_per_iter * 1e9
        );
        self.results
            .borrow_mut()
            .push((name.to_string(), secs_per_iter * 1e9));
        self.tel.emit(
            Record::new("bench.result")
                .with("name", name)
                .with("iters", iters)
                .with("ns_per_iter", secs_per_iter * 1e9),
        );
    }

    fn result_ns(&self, name: &str) -> Option<f64> {
        self.results
            .borrow()
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns)
    }
}

fn panel() -> cit_market::AssetPanel {
    SynthConfig {
        num_assets: 10,
        num_days: 400,
        test_start: 320,
        ..Default::default()
    }
    .generate()
}

fn bench_dwt(h: &Harness) {
    let signal: Vec<f64> = (0..256)
        .map(|i| (i as f64 * 0.1).sin() + 0.01 * i as f64)
        .collect();
    h.bench("dwt/decompose_256_l4", || {
        black_box(decompose(black_box(&signal), 4));
    });
    let p = decompose(&signal, 4);
    h.bench("dwt/reconstruct_256_l4", || {
        black_box(reconstruct(black_box(&p)));
    });
    h.bench("dwt/horizon_scales_256_n5", || {
        black_box(horizon_scales(black_box(&signal), 5));
    });
}

fn bench_decomposition(h: &Harness) {
    let panel = panel();
    h.bench("decomposition/raw_window_m10_z32", || {
        black_box(raw_window(black_box(&panel), 300, 32));
    });
    h.bench("decomposition/horizon_windows_m10_z32_n5", || {
        black_box(horizon_windows(black_box(&panel), 300, 32, 5));
    });
}

fn bench_networks(h: &Harness) {
    let (m, f, z) = (10usize, 8usize, 32usize);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let tcn = Tcn::new(&mut store, &mut rng, "t", 4, f, 3, 2);
    let att = SpatialAttention::new(&mut store, &mut rng, "a", m, f, z);
    let window = Tensor::ones(&[m, 4, z]);

    h.bench("networks/tcn_forward_m10_f8_z32", || {
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(window.clone());
        let hid = tcn.forward(&mut ctx, x);
        black_box(ctx.g.value(hid).sum());
    });
    h.bench("networks/tcn_attention_forward_backward", || {
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(window.clone());
        let hid = tcn.forward(&mut ctx, x);
        let hid = att.forward(&mut ctx, hid);
        let sq = ctx.g.mul(hid, hid);
        let loss = ctx.g.sum_all(sq);
        black_box(ctx.backward(loss).len());
    });
    // Ablation: graph-construction overhead vs plain tensor math.
    let a = Tensor::ones(&[64, 64]);
    let b = Tensor::ones(&[64, 64]);
    h.bench("networks/autodiff_matmul_64", || {
        let mut ctx = Ctx::new(&store);
        let av = ctx.input(a.clone());
        let bv = ctx.input(b.clone());
        let cvar = ctx.g.matmul(av, bv);
        black_box(ctx.g.value(cvar).sum());
    });
    h.bench("networks/plain_matmul_64", || {
        black_box(a.matmul(&b).sum());
    });
}

fn bench_env_and_strategies(h: &Harness) {
    let panel = panel();
    let cfg = EnvConfig {
        window: 32,
        transaction_cost: 1e-3,
    };
    h.bench_batched(
        "env/env_step_m10_x50",
        30,
        || PortfolioEnv::new(&panel, cfg, 40, 320),
        |mut env| {
            let a = vec![0.1f64; 10];
            for _ in 0..50 {
                black_box(env.step(&a).reward);
            }
        },
    );
    let mut olmar = Olmar::default();
    olmar.reset(10);
    let held = vec![0.1f64; 10];
    h.bench("env/olmar_decide_m10", || {
        let ctx = DecisionContext {
            panel: &panel,
            t: 200,
            prev_weights: &held,
            window: 32,
        };
        black_box(olmar.decide(&ctx));
    });
    let mut rmr = Rmr::default();
    rmr.reset(10);
    h.bench("env/rmr_decide_m10", || {
        let ctx = DecisionContext {
            panel: &panel,
            t: 200,
            prev_weights: &held,
            window: 32,
        };
        black_box(rmr.decide(&ctx));
    });
}

fn bench_cit(h: &Harness) {
    let panel = panel();
    let mut cfg = CitConfig::smoke(1);
    cfg.window = 16;
    cfg.num_policies = 3;
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    let prev = vec![vec![0.1f64; 10]; 3];

    h.bench("cit/decide_n3_m10", || {
        black_box(trader.decide(&panel, 200, &prev, false).final_action.len());
    });
    // Ablation: marginal cost of the counterfactual mechanism, timed as a
    // short training burst per critic mode.
    for mode in [
        cit_core::CriticMode::Counterfactual,
        cit_core::CriticMode::SharedQ,
    ] {
        h.bench_batched(
            &format!("cit/train_burst_{}", mode.label()),
            5,
            || {
                let mut cfg = CitConfig::smoke(2);
                cfg.window = 16;
                cfg.num_policies = 3;
                cfg.total_steps = 32;
                cfg.critic_mode = mode;
                CrossInsightTrader::new(&panel, cfg)
            },
            |mut t| {
                black_box(t.train(&panel).steps);
            },
        );
    }
}

/// Deterministic pseudo-random fill for kernel inputs.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Tiled kernels vs the textbook naive reference (`matmul_ref`), plus the
/// im2col conv path. Asserts every kernel output is finite — the `--quick`
/// CI smoke relies on this.
fn bench_kernels(h: &Harness) {
    let s = 128usize;
    let a = fill(s * s, 11);
    let b = fill(s * s, 23);
    h.bench("kernels/matmul_naive_ref_128", || {
        black_box(matmul_ref(s, s, s, black_box(&a), black_box(&b)));
    });
    h.bench("kernels/matmul_tiled_128", || {
        black_box(matmul_nn(s, s, s, black_box(&a), black_box(&b)));
    });
    h.bench("kernels/matmul_nt_tiled_128", || {
        black_box(matmul_nt(s, s, s, black_box(&a), black_box(&b)));
    });
    h.bench("kernels/matmul_tn_tiled_128", || {
        black_box(matmul_tn(s, s, s, black_box(&a), black_box(&b)));
    });
    let out = matmul_nn(s, s, s, &a, &b);
    assert!(
        out.iter().all(|v| v.is_finite()),
        "tiled matmul produced non-finite output"
    );

    // Conv1d forward+backward through the graph op (im2col path inside).
    let (n, cin, l, cout, k, dil) = (10usize, 8usize, 32usize, 8usize, 3usize, 2usize);
    let x = Tensor::from_vec(&[n, cin, l], fill(n * cin * l, 31));
    let w = Tensor::from_vec(&[cout, cin, k], fill(cout * cin * k, 37));
    let bias = Tensor::from_vec(&[cout], fill(cout, 41));
    h.bench("kernels/conv1d_im2col_fwd_10x8x32", || {
        let mut g = cit_tensor::Graph::new();
        let xv = g.input(x.clone());
        let wv = g.input(w.clone());
        let bv = g.input(bias.clone());
        let y = g.conv1d(xv, wv, bv, dil);
        black_box(g.value(y).sum());
    });
    h.bench("kernels/conv1d_im2col_fwd_bwd_10x8x32", || {
        let mut g = cit_tensor::Graph::new();
        let xv = g.param_leaf(x.clone());
        let wv = g.param_leaf(w.clone());
        let bv = g.param_leaf(bias.clone());
        let y = g.conv1d(xv, wv, bv, dil);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        black_box(grads.wrt(wv).map(|t| t.sum()));
    });
    {
        let mut g = cit_tensor::Graph::new();
        let xv = g.input(x.clone());
        let wv = g.input(w.clone());
        let bv = g.input(bias.clone());
        let y = g.conv1d(xv, wv, bv, dil);
        assert!(
            g.value(y).all_finite(),
            "im2col conv produced non-finite output"
        );
    }
}

/// Cold full decomposition vs the warm sliding-window cache. The window is
/// long relative to the slide period (z = 256, period = 16), where the
/// incremental path recomputes only the coefficient/reconstruction tails.
fn bench_dwt_cache(h: &Harness) {
    let (z, n_scales) = (256usize, 5usize);
    let x: Vec<f64> = (0..z + 4096)
        .map(|i| {
            let t = i as f64;
            100.0 + 0.2 * t + 3.0 * (t * 0.37).sin() + 0.8 * (t * 1.7).cos()
        })
        .collect();
    let mut end = z - 1;
    h.bench("dwt_cache/horizon_scales_cold_z256_n5", || {
        end += 1;
        if end >= x.len() {
            end = z - 1;
        }
        let window = &x[end + 1 - z..=end];
        black_box(horizon_scales(black_box(window), n_scales));
    });
    let mut cache = SlidingDwt::new(z, n_scales);
    let mut end = z - 1;
    h.bench("dwt_cache/sliding_dwt_warm_z256_n5", || {
        end += 1;
        if end >= x.len() {
            end = z - 1;
        }
        let window = &x[end + 1 - z..=end];
        black_box(cache.scales_at(end, window).len());
    });
    let stats = cache.stats();
    assert!(
        stats.incremental > 0,
        "warm bench never hit the incremental path: {stats:?}"
    );
}

/// A training burst at paper-like scale, reporting the mean `train.step`
/// rollout-step span and the mean `train.update` span through telemetry.
fn bench_train_step(h: &Harness) {
    let panel = SynthConfig {
        num_assets: 11,
        num_days: 500,
        test_start: 420,
        ..Default::default()
    }
    .generate();
    let (tel, _sink) = Telemetry::memory();
    let cfg = CitConfig {
        seed: 42,
        threads: 0, // auto: honours CIT_THREADS
        total_steps: if h.quick { 32 } else { 512 },
        ..CitConfig::default()
    };
    let mut trader = CrossInsightTrader::new(&panel, cfg).with_telemetry(tel.clone());
    let t0 = Instant::now();
    let report = trader.train(&panel);
    let wall = t0.elapsed();
    assert!(
        report.update_rewards.iter().all(|r| r.is_finite()),
        "training burst produced non-finite rewards"
    );
    let steps = report.steps as f64;
    h.report(
        "train/env_step_paper_scale",
        report.steps as u64,
        wall.as_secs_f64() / steps,
    );
    for span in ["train.step", "train.update"] {
        let hist = tel.span_histogram(span);
        if hist.count() > 0 {
            h.report(&format!("train/span_{span}"), hist.count(), hist.mean());
        }
    }
    let stats = trader.dwt_stats();
    println!(
        "train/dwt_cache                          hits: memo {} incremental {} full {}",
        stats.memo_hits, stats.incremental, stats.full
    );
}

/// Pre-PR baselines measured at commit 6eac353 (same machine, release
/// profile) with the seed's naive kernels, scalar conv loops, uncached DWT
/// and joint single-threaded graph. `train.update`/env-step numbers come
/// from the identical 512-step paper-scale burst.
const BASELINE_6EAC353: [(&str, f64); 4] = [
    ("matmul_128_ns", 279_016.9),
    ("conv1d_fwd_bwd_10x8x32_ns", 255_887.2),
    ("train_env_step_ns", 6_007_000.0),
    ("train_update_span_ns", 192_205_000.0),
];

/// Transposed-layout baselines measured at commit 2300cc1 (same machine),
/// before the packed micro-kernel rewrite — the nt number is the 7×
/// anomaly the tiling-scheme work exists to fix.
const BASELINE_2300CC1: [(&str, f64); 2] = [
    ("matmul_128_nt_ns", 1_217_120.0),
    ("matmul_128_tn_ns", 212_188.5),
];

/// Writes `BENCH_compute.json` at the repository root: measured numbers,
/// the embedded pre-PR baseline, and derived speedups.
fn write_manifest(h: &Harness) {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"cit-compute\",\n");
    json.push_str("  \"baseline_commit\": \"6eac353\",\n");
    json.push_str(&format!("  \"quick\": {},\n", h.quick));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        cit_compute::threads_from_env()
    ));

    json.push_str("  \"results_ns\": {\n");
    let results = h.results.borrow();
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");

    json.push_str("  \"baseline_ns\": {\n");
    let baselines: Vec<(&str, f64)> = BASELINE_6EAC353
        .iter()
        .chain(BASELINE_2300CC1.iter())
        .copied()
        .collect();
    for (i, (name, ns)) in baselines.iter().enumerate() {
        let comma = if i + 1 < baselines.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");

    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut push_ratio = |label: &str, num: Option<f64>, den: Option<f64>| {
        if let (Some(n), Some(d)) = (num, den) {
            if d > 0.0 {
                speedups.push((label.to_string(), n / d));
            }
        }
    };
    push_ratio(
        "matmul_128_tiled_vs_naive_ref",
        h.result_ns("kernels/matmul_naive_ref_128"),
        h.result_ns("kernels/matmul_tiled_128"),
    );
    push_ratio(
        "matmul_128_tiled_vs_baseline_6eac353",
        Some(BASELINE_6EAC353[0].1),
        h.result_ns("kernels/matmul_tiled_128"),
    );
    push_ratio(
        "matmul_128_nt_vs_baseline",
        Some(BASELINE_2300CC1[0].1),
        h.result_ns("kernels/matmul_nt_tiled_128"),
    );
    push_ratio(
        "matmul_128_tn_vs_baseline",
        Some(BASELINE_2300CC1[1].1),
        h.result_ns("kernels/matmul_tn_tiled_128"),
    );
    push_ratio(
        "conv1d_fwd_bwd_vs_baseline_6eac353",
        Some(BASELINE_6EAC353[1].1),
        h.result_ns("kernels/conv1d_im2col_fwd_bwd_10x8x32"),
    );
    push_ratio(
        "dwt_warm_vs_cold_z256_n5",
        h.result_ns("dwt_cache/horizon_scales_cold_z256_n5"),
        h.result_ns("dwt_cache/sliding_dwt_warm_z256_n5"),
    );
    push_ratio(
        "train_env_step_vs_baseline_6eac353",
        Some(BASELINE_6EAC353[2].1),
        h.result_ns("train/env_step_paper_scale"),
    );
    push_ratio(
        "train_update_span_vs_baseline_6eac353",
        Some(BASELINE_6EAC353[3].1),
        h.result_ns("train/span_train.update"),
    );
    json.push_str("  \"speedups\": {\n");
    for (i, (name, ratio)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ratio:.2}{comma}\n"));
    }
    json.push_str("  },\n");

    // Sanity field, deliberately OUTSIDE the speedups map (it is a cost
    // ratio, not a speedup — values near 1.0 are good, and the CI floor on
    // speedups must not apply to it): nt must stay within 2× of nn.
    let nt_vs_nn = match (
        h.result_ns("kernels/matmul_nt_tiled_128"),
        h.result_ns("kernels/matmul_tiled_128"),
    ) {
        (Some(nt), Some(nn)) if nn > 0.0 => nt / nn,
        _ => f64::NAN,
    };
    json.push_str(&format!("  \"nt_vs_nn_ratio\": {nt_vs_nn:.2}\n}}\n"));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compute.json");
    std::fs::write(path, &json).expect("write BENCH_compute.json");
    println!("wrote {path}");
    for (name, ratio) in &speedups {
        println!("speedup {name:<45} {ratio:.2}x");
    }
}

fn main() {
    // Same resolution path production uses: the kernels below go through
    // the installed autotuner unless CIT_AUTOTUNE=off / CIT_TILING is set.
    cit_compute::autotune::ensure_installed();
    let h = Harness::new();
    bench_kernels(&h);
    bench_dwt_cache(&h);
    if !h.quick {
        bench_dwt(&h);
        bench_decomposition(&h);
        bench_networks(&h);
        bench_env_and_strategies(&h);
        bench_cit(&h);
    }
    bench_train_step(&h);
    write_manifest(&h);
    finish_run(&h.tel);
}
