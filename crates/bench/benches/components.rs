//! Criterion micro-benchmarks for every performance-relevant component,
//! including the ablation benches called out in DESIGN.md §5:
//! autodiff overhead, DWT decomposition, TCN/attention forward+backward,
//! environment stepping, critic + counterfactual evaluation, and one full
//! cross-insight training decision.

use cit_core::{horizon_windows, raw_window, CitConfig, CrossInsightTrader};
use cit_dwt::{decompose, horizon_scales, reconstruct};
use cit_market::{EnvConfig, PortfolioEnv, SynthConfig};
use cit_nn::{Ctx, ParamStore, SpatialAttention, Tcn};
use cit_online::{Olmar, Rmr};
use cit_market::{DecisionContext, Strategy};
use cit_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn panel() -> cit_market::AssetPanel {
    SynthConfig { num_assets: 10, num_days: 400, test_start: 320, ..Default::default() }.generate()
}

fn bench_dwt(c: &mut Criterion) {
    let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin() + 0.01 * i as f64).collect();
    let mut g = c.benchmark_group("dwt");
    g.bench_function("decompose_256_l4", |b| {
        b.iter(|| decompose(black_box(&signal), 4));
    });
    let p = decompose(&signal, 4);
    g.bench_function("reconstruct_256_l4", |b| {
        b.iter(|| reconstruct(black_box(&p)));
    });
    g.bench_function("horizon_scales_256_n5", |b| {
        b.iter(|| horizon_scales(black_box(&signal), 5));
    });
    g.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let panel = panel();
    let mut g = c.benchmark_group("decomposition");
    g.bench_function("raw_window_m10_z32", |b| {
        b.iter(|| raw_window(black_box(&panel), 300, 32));
    });
    g.bench_function("horizon_windows_m10_z32_n5", |b| {
        b.iter(|| horizon_windows(black_box(&panel), 300, 32, 5));
    });
    g.finish();
}

fn bench_networks(c: &mut Criterion) {
    let (m, f, z) = (10usize, 8usize, 32usize);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let tcn = Tcn::new(&mut store, &mut rng, "t", 4, f, 3, 2);
    let att = SpatialAttention::new(&mut store, &mut rng, "a", m, f, z);
    let window = Tensor::ones(&[m, 4, z]);

    let mut g = c.benchmark_group("networks");
    g.bench_function("tcn_forward_m10_f8_z32", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new(&store);
            let x = ctx.input(window.clone());
            let h = tcn.forward(&mut ctx, x);
            black_box(ctx.g.value(h).sum())
        });
    });
    g.bench_function("tcn_attention_forward_backward", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new(&store);
            let x = ctx.input(window.clone());
            let h = tcn.forward(&mut ctx, x);
            let h = att.forward(&mut ctx, h);
            let sq = ctx.g.mul(h, h);
            let loss = ctx.g.sum_all(sq);
            black_box(ctx.backward(loss).len())
        });
    });
    // Ablation: graph-construction overhead vs plain tensor math.
    let a = Tensor::ones(&[64, 64]);
    let b2 = Tensor::ones(&[64, 64]);
    g.bench_function("autodiff_matmul_64", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new(&store);
            let av = ctx.input(a.clone());
            let bv = ctx.input(b2.clone());
            let cvar = ctx.g.matmul(av, bv);
            black_box(ctx.g.value(cvar).sum())
        });
    });
    g.bench_function("plain_matmul_64", |b| {
        b.iter(|| black_box(a.matmul(&b2).sum()));
    });
    g.finish();
}

fn bench_env_and_strategies(c: &mut Criterion) {
    let panel = panel();
    let cfg = EnvConfig { window: 32, transaction_cost: 1e-3 };
    let mut g = c.benchmark_group("env");
    g.bench_function("env_step_m10", |b| {
        b.iter_batched(
            || PortfolioEnv::new(&panel, cfg, 40, 320),
            |mut env| {
                let a = vec![0.1f64; 10];
                for _ in 0..50 {
                    black_box(env.step(&a).reward);
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("olmar_decide_m10", |b| {
        let mut s = Olmar::default();
        s.reset(10);
        let held = vec![0.1f64; 10];
        b.iter(|| {
            let ctx = DecisionContext { panel: &panel, t: 200, prev_weights: &held, window: 32 };
            black_box(s.decide(&ctx))
        });
    });
    g.bench_function("rmr_decide_m10", |b| {
        let mut s = Rmr::default();
        s.reset(10);
        let held = vec![0.1f64; 10];
        b.iter(|| {
            let ctx = DecisionContext { panel: &panel, t: 200, prev_weights: &held, window: 32 };
            black_box(s.decide(&ctx))
        });
    });
    g.finish();
}

fn bench_cit(c: &mut Criterion) {
    let panel = panel();
    let mut cfg = CitConfig::smoke(1);
    cfg.window = 16;
    cfg.num_policies = 3;
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    let prev = vec![vec![0.1f64; 10]; 3];

    let mut g = c.benchmark_group("cit");
    g.sample_size(20);
    g.bench_function("decide_n3_m10", |b| {
        b.iter(|| black_box(trader.decide(&panel, 200, &prev, false).final_action.len()));
    });
    // Ablation: marginal cost of the counterfactual mechanism = one full
    // training run with vs without it would be macro-scale; here we time a
    // short training burst per critic mode instead.
    for mode in [cit_core::CriticMode::Counterfactual, cit_core::CriticMode::SharedQ] {
        g.bench_function(format!("train_burst_{}", mode.label()), |b| {
            b.iter_batched(
                || {
                    let mut cfg = CitConfig::smoke(2);
                    cfg.window = 16;
                    cfg.num_policies = 3;
                    cfg.total_steps = 32;
                    cfg.critic_mode = mode;
                    CrossInsightTrader::new(&panel, cfg)
                },
                |mut t| {
                    black_box(t.train(&panel).steps);
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dwt,
    bench_decomposition,
    bench_networks,
    bench_env_and_strategies,
    bench_cit
);
criterion_main!(benches);
