//! Micro-benchmarks for every performance-relevant component, including
//! the ablation benches called out in DESIGN.md §5: autodiff overhead,
//! DWT decomposition, TCN/attention forward+backward, environment
//! stepping, and short cross-insight training bursts per critic mode.
//!
//! The harness is hand-rolled (`harness = false`): the build resolves
//! offline, so criterion is unavailable. Each bench is calibrated to a
//! minimum measurement window, the best-of-rounds ns/iter is printed to
//! stdout, and a machine-readable `bench.result` record per bench lands
//! in `results/components_bench_run.jsonl` via `cit-telemetry`.

use cit_bench::{experiment_telemetry, finish_run, Scale};
use cit_core::{horizon_windows, raw_window, CitConfig, CrossInsightTrader};
use cit_dwt::{decompose, horizon_scales, reconstruct};
use cit_market::{DecisionContext, EnvConfig, PortfolioEnv, Strategy, SynthConfig};
use cit_nn::{Ctx, ParamStore, SpatialAttention, Tcn};
use cit_online::{Olmar, Rmr};
use cit_telemetry::{Record, Telemetry};
use cit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum timed window per measurement round.
const MIN_WINDOW: Duration = Duration::from_millis(20);
/// Measurement rounds; the reported ns/iter is the fastest round.
const ROUNDS: usize = 5;

struct Harness {
    tel: Telemetry,
}

impl Harness {
    fn new() -> Self {
        // `cargo bench` passes extra flags (e.g. `--bench`), so argument
        // parsing is skipped; benches always run at a fixed smoke scale.
        Harness {
            tel: experiment_telemetry("components_bench", Scale::Smoke, 0),
        }
    }

    /// Times `f`, doubling the iteration count until one round fills the
    /// measurement window, then reports the fastest of [`ROUNDS`] rounds.
    fn bench(&self, name: &str, mut f: impl FnMut()) {
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            if t0.elapsed() >= MIN_WINDOW || iters >= 1 << 22 {
                break;
            }
            iters *= 2;
        }
        let mut best = Duration::MAX;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t0.elapsed());
        }
        self.report(name, iters, best.as_secs_f64() / iters as f64);
    }

    /// Times `routine` over fresh `setup()` state per batch (setup
    /// excluded from the measurement) — for stateful work like training
    /// bursts that cannot be repeated on the same value.
    fn bench_batched<T>(
        &self,
        name: &str,
        batches: usize,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T),
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..batches {
            let state = setup();
            let t0 = Instant::now();
            routine(state);
            total += t0.elapsed();
        }
        self.report(name, batches as u64, total.as_secs_f64() / batches as f64);
    }

    fn report(&self, name: &str, iters: u64, secs_per_iter: f64) {
        println!(
            "{name:<40} {:>14.1} ns/iter  ({iters} iters)",
            secs_per_iter * 1e9
        );
        self.tel.emit(
            Record::new("bench.result")
                .with("name", name)
                .with("iters", iters)
                .with("ns_per_iter", secs_per_iter * 1e9),
        );
    }
}

fn panel() -> cit_market::AssetPanel {
    SynthConfig {
        num_assets: 10,
        num_days: 400,
        test_start: 320,
        ..Default::default()
    }
    .generate()
}

fn bench_dwt(h: &Harness) {
    let signal: Vec<f64> = (0..256)
        .map(|i| (i as f64 * 0.1).sin() + 0.01 * i as f64)
        .collect();
    h.bench("dwt/decompose_256_l4", || {
        black_box(decompose(black_box(&signal), 4));
    });
    let p = decompose(&signal, 4);
    h.bench("dwt/reconstruct_256_l4", || {
        black_box(reconstruct(black_box(&p)));
    });
    h.bench("dwt/horizon_scales_256_n5", || {
        black_box(horizon_scales(black_box(&signal), 5));
    });
}

fn bench_decomposition(h: &Harness) {
    let panel = panel();
    h.bench("decomposition/raw_window_m10_z32", || {
        black_box(raw_window(black_box(&panel), 300, 32));
    });
    h.bench("decomposition/horizon_windows_m10_z32_n5", || {
        black_box(horizon_windows(black_box(&panel), 300, 32, 5));
    });
}

fn bench_networks(h: &Harness) {
    let (m, f, z) = (10usize, 8usize, 32usize);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let tcn = Tcn::new(&mut store, &mut rng, "t", 4, f, 3, 2);
    let att = SpatialAttention::new(&mut store, &mut rng, "a", m, f, z);
    let window = Tensor::ones(&[m, 4, z]);

    h.bench("networks/tcn_forward_m10_f8_z32", || {
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(window.clone());
        let hid = tcn.forward(&mut ctx, x);
        black_box(ctx.g.value(hid).sum());
    });
    h.bench("networks/tcn_attention_forward_backward", || {
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(window.clone());
        let hid = tcn.forward(&mut ctx, x);
        let hid = att.forward(&mut ctx, hid);
        let sq = ctx.g.mul(hid, hid);
        let loss = ctx.g.sum_all(sq);
        black_box(ctx.backward(loss).len());
    });
    // Ablation: graph-construction overhead vs plain tensor math.
    let a = Tensor::ones(&[64, 64]);
    let b = Tensor::ones(&[64, 64]);
    h.bench("networks/autodiff_matmul_64", || {
        let mut ctx = Ctx::new(&store);
        let av = ctx.input(a.clone());
        let bv = ctx.input(b.clone());
        let cvar = ctx.g.matmul(av, bv);
        black_box(ctx.g.value(cvar).sum());
    });
    h.bench("networks/plain_matmul_64", || {
        black_box(a.matmul(&b).sum());
    });
}

fn bench_env_and_strategies(h: &Harness) {
    let panel = panel();
    let cfg = EnvConfig {
        window: 32,
        transaction_cost: 1e-3,
    };
    h.bench_batched(
        "env/env_step_m10_x50",
        30,
        || PortfolioEnv::new(&panel, cfg, 40, 320),
        |mut env| {
            let a = vec![0.1f64; 10];
            for _ in 0..50 {
                black_box(env.step(&a).reward);
            }
        },
    );
    let mut olmar = Olmar::default();
    olmar.reset(10);
    let held = vec![0.1f64; 10];
    h.bench("env/olmar_decide_m10", || {
        let ctx = DecisionContext {
            panel: &panel,
            t: 200,
            prev_weights: &held,
            window: 32,
        };
        black_box(olmar.decide(&ctx));
    });
    let mut rmr = Rmr::default();
    rmr.reset(10);
    h.bench("env/rmr_decide_m10", || {
        let ctx = DecisionContext {
            panel: &panel,
            t: 200,
            prev_weights: &held,
            window: 32,
        };
        black_box(rmr.decide(&ctx));
    });
}

fn bench_cit(h: &Harness) {
    let panel = panel();
    let mut cfg = CitConfig::smoke(1);
    cfg.window = 16;
    cfg.num_policies = 3;
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    let prev = vec![vec![0.1f64; 10]; 3];

    h.bench("cit/decide_n3_m10", || {
        black_box(trader.decide(&panel, 200, &prev, false).final_action.len());
    });
    // Ablation: marginal cost of the counterfactual mechanism, timed as a
    // short training burst per critic mode.
    for mode in [
        cit_core::CriticMode::Counterfactual,
        cit_core::CriticMode::SharedQ,
    ] {
        h.bench_batched(
            &format!("cit/train_burst_{}", mode.label()),
            5,
            || {
                let mut cfg = CitConfig::smoke(2);
                cfg.window = 16;
                cfg.num_policies = 3;
                cfg.total_steps = 32;
                cfg.critic_mode = mode;
                CrossInsightTrader::new(&panel, cfg)
            },
            |mut t| {
                black_box(t.train(&panel).steps);
            },
        );
    }
}

fn main() {
    let h = Harness::new();
    bench_dwt(&h);
    bench_decomposition(&h);
    bench_networks(&h);
    bench_env_and_strategies(&h);
    bench_cit(&h);
    finish_run(&h.tel);
}
