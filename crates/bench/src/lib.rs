//! # cit-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index) plus criterion
//! micro-benchmarks. Each binary accepts `--scale smoke|paper` and
//! `--seed <u64>`, prints the paper-style table to stdout and writes CSV
//! series under `results/`. Checkpoint-aware binaries (`table3`, `table4`)
//! additionally accept `--resume`: CIT trainings then auto-checkpoint
//! under `results/checkpoints/` and a restarted run continues from the
//! last checkpoint bit-identically instead of retraining from scratch.

#![deny(missing_docs)]

use cit_core::{CitConfig, CrossInsightTrader};
use cit_faults::FaultInjector;
use cit_market::{
    assess_panel, market_result, run_test_period_with, AssetPanel, BacktestResult, EnvConfig,
    MarketPreset, QualityConfig,
};
use cit_online::{Crp, Eg, Olmar, Ons, UniversalPortfolio};
use cit_rl::{
    A2c, Ddpg, DdpgConfig, DeepTrader, Eiie, MetaTrader, MetaTraderConfig, Ppo, PpoConfig,
    RlConfig, Sarl,
};
use cit_telemetry::{FilterSink, JsonlSink, MultiSink, Record, StderrSink, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny panels and step counts: finishes in seconds, for CI.
    Smoke,
    /// The scale recorded in EXPERIMENTS.md (markets shrunk 4× in assets
    /// and 2× in days relative to the paper; see DESIGN.md §2).
    Paper,
}

impl Scale {
    /// Parses `--scale` and `--seed` from command-line arguments
    /// (defaults: paper, 42). Binaries that also honour `--resume` use
    /// [`BenchOpts::from_args`] instead.
    pub fn from_args() -> (Scale, u64) {
        let opts = BenchOpts::from_args();
        assert!(
            !opts.resume,
            "--resume is not supported by this binary (only table3/table4 checkpoint)"
        );
        (opts.scale, opts.seed)
    }
}

/// Parsed command-line options of an experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Experiment scale (`--scale smoke|paper`, default paper).
    pub scale: Scale,
    /// RNG seed (`--seed <u64>`, default 42).
    pub seed: u64,
    /// Checkpoint/resume mode (`--resume`): CIT trainings auto-checkpoint
    /// under `results/checkpoints/` and continue from an existing
    /// checkpoint instead of retraining from scratch.
    pub resume: bool,
}

impl BenchOpts {
    /// Parses `--scale`, `--seed` and `--resume` from the command line.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = BenchOpts {
            scale: Scale::Paper,
            seed: 42,
            resume: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = match args[i + 1].as_str() {
                        "smoke" => Scale::Smoke,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale {other}; use smoke|paper"),
                    };
                    i += 2;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().expect("--seed takes a u64");
                    i += 2;
                }
                "--resume" => {
                    opts.resume = true;
                    i += 1;
                }
                other => {
                    panic!("unknown argument {other}; supported: --scale, --seed, --resume")
                }
            }
        }
        opts
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Smoke => write!(f, "smoke"),
            Scale::Paper => write!(f, "paper"),
        }
    }
}

/// The shared diagnostics handle of an experiment binary: progress lines
/// go to stderr (pretty one-liners), while the full record stream — run
/// manifest, per-update training diagnostics, per-step backtest records
/// and span-timing snapshots — lands in `results/<experiment>_run.jsonl`.
///
/// Falls back to stderr-only when the JSONL file cannot be created.
pub fn experiment_telemetry(experiment: &str, scale: Scale, seed: u64) -> Telemetry {
    let stderr = Arc::new(FilterSink::new(Arc::new(StderrSink), &["progress", "run."]));
    let path = out_dir().join(format!("{experiment}_run.jsonl"));
    let tel = match JsonlSink::create(&path) {
        Ok(jsonl) => Telemetry::new(Arc::new(MultiSink::new(vec![stderr, Arc::new(jsonl)]))),
        Err(err) => {
            eprintln!(
                "warning: cannot write {}: {err}; stderr telemetry only",
                path.display()
            );
            Telemetry::new(stderr)
        }
    };
    tel.emit(
        Record::new("run.start")
            .with("experiment", experiment)
            .with("scale", scale.to_string())
            .with("seed", seed),
    );
    tel
}

/// Closes out an experiment run: emits a `run.end` marker, dumps every
/// metric/span-histogram snapshot into the record stream and flushes.
pub fn finish_run(telemetry: &Telemetry) {
    telemetry.emit(Record::new("run.end"));
    telemetry.report();
}

/// Resolves the ambient fault plan (the `CIT_FAULT_PLAN` environment
/// variable) into an injector for chaos smoke tests. Unset → disabled
/// (zero-cost no-op injection points); an unreadable or malformed plan
/// file warns on `telemetry` and stays disabled rather than aborting the
/// experiment.
pub fn chaos_injector(telemetry: &Telemetry) -> FaultInjector {
    match FaultInjector::from_env() {
        Ok(inj) => {
            if inj.is_enabled() {
                telemetry.progress(format!(
                    "chaos: fault plan active (seed {})",
                    inj.seed().unwrap_or(0)
                ));
            }
            inj
        }
        Err(err) => {
            telemetry.progress(format!(
                "warning: ignoring {} fault plan: {err}",
                cit_faults::FAULT_PLAN_ENV
            ));
            FaultInjector::disabled()
        }
    }
}

/// Refuses to benchmark garbage: assesses every panel's data quality and
/// errors — naming the offending panels and assets — when any carries
/// unrepaired critical issues (non-finite/non-positive prices cannot occur
/// in a constructed [`AssetPanel`], so in practice this catches outlier
/// returns that would corrupt the paper's metrics). Each report is also
/// emitted on `telemetry` as a `quality.report` record.
pub fn require_clean_panels(panels: &[AssetPanel], telemetry: &Telemetry) -> Result<(), String> {
    let cfg = QualityConfig::default();
    let mut offenders = Vec::new();
    for p in panels {
        let report = assess_panel(p, &cfg);
        report.emit(telemetry);
        if report.has_critical() {
            offenders.push(format!(
                "{} ({}; assets: {})",
                p.name(),
                report.summary(),
                report.offending_assets().join(", ")
            ));
        }
    }
    if offenders.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "panel quality guard: unrepaired critical issues in {}",
            offenders.join("; ")
        ))
    }
}

/// Generates the three market panels at the given scale.
pub fn panels(scale: Scale) -> Vec<AssetPanel> {
    MarketPreset::ALL
        .iter()
        .map(|p| match scale {
            Scale::Smoke => p.scaled(10, 24).generate(),
            Scale::Paper => p.scaled(4, 2).generate(),
        })
        .collect()
}

/// The environment configuration used by all experiments.
pub fn env_config(scale: Scale) -> EnvConfig {
    EnvConfig {
        window: window(scale),
        transaction_cost: 1e-3,
    }
}

/// Look-back window per scale.
pub fn window(_scale: Scale) -> usize {
    16
}

/// Base RL config per scale.
pub fn rl_config(scale: Scale, seed: u64) -> RlConfig {
    match scale {
        Scale::Smoke => RlConfig {
            total_steps: 300,
            window: window(scale),
            seed,
            ..RlConfig::smoke(seed)
        },
        Scale::Paper => RlConfig {
            total_steps: 2_500,
            window: window(scale),
            gamma: 0.9,
            lr: 5e-4,
            seed,
            ..RlConfig::default()
        },
    }
}

/// CIT config per scale (with the paper's best `n = 5` policies at paper
/// scale).
pub fn cit_config(scale: Scale, seed: u64) -> CitConfig {
    match scale {
        Scale::Smoke => CitConfig {
            window: window(scale),
            seed,
            ..CitConfig::smoke(seed)
        },
        Scale::Paper => CitConfig {
            num_policies: 5,
            window: window(scale),
            total_steps: 5_000,
            lr: 1e-3,
            gamma: 0.3,
            action_temperature: 4.0,
            init_log_std: -2.0,
            seed,
            ..CitConfig::default()
        },
    }
}

/// Trains + backtests one named model on a panel. Known names:
/// OLMAR, CRP, ONS, UP, EG, EIIE, A2C, DDPG, PPO, SARL, DeepTrader, CIT,
/// Market.
pub fn run_model(name: &str, panel: &AssetPanel, scale: Scale, seed: u64) -> BacktestResult {
    run_model_with(name, panel, scale, seed, &Telemetry::disabled())
}

/// [`run_model`] with diagnostics: the trained CIT model emits per-update
/// training records, and every backtest emits per-step portfolio records,
/// into `telemetry`.
pub fn run_model_with(
    name: &str,
    panel: &AssetPanel,
    scale: Scale,
    seed: u64,
    telemetry: &Telemetry,
) -> BacktestResult {
    let env = env_config(scale);
    let rl = rl_config(scale, seed);
    let tp = |strategy: &mut dyn cit_market::Strategy| {
        run_test_period_with(panel, env, strategy, telemetry)
    };
    match name {
        "OLMAR" => tp(&mut Olmar::default()),
        "CRP" => tp(&mut Crp),
        "ONS" => tp(&mut Ons::default()),
        "UP" => tp(&mut UniversalPortfolio::default()),
        "EG" => tp(&mut Eg::default()),
        "EIIE" => {
            let mut agent = Eiie::new(panel, rl);
            agent.train(panel);
            tp(&mut agent)
        }
        "A2C" => {
            let mut agent = A2c::new(panel, rl);
            agent.train(panel);
            tp(&mut agent)
        }
        "DDPG" => {
            let mut agent = Ddpg::new(
                panel,
                DdpgConfig {
                    base: rl,
                    ..Default::default()
                },
            );
            agent.train(panel);
            tp(&mut agent)
        }
        "PPO" => {
            let mut agent = Ppo::new(
                panel,
                PpoConfig {
                    base: rl,
                    ..Default::default()
                },
            );
            agent.train(panel);
            tp(&mut agent)
        }
        "SARL" => {
            let mut agent = Sarl::new(panel, rl);
            agent.train(panel);
            tp(&mut agent)
        }
        "DeepTrader" => {
            let mut agent = DeepTrader::new(panel, rl);
            agent.train(panel);
            tp(&mut agent)
        }
        "CIT" => {
            let mut trader = CrossInsightTrader::new(panel, cit_config(scale, seed))
                .with_telemetry(telemetry.clone())
                .with_faults(chaos_injector(telemetry));
            trader.train(panel);
            tp(&mut trader)
        }
        "MetaTrader" => {
            let mut agent = MetaTrader::new(
                panel,
                MetaTraderConfig {
                    base: rl,
                    ..Default::default()
                },
            );
            agent.train(panel);
            tp(&mut agent)
        }
        "Market" => market_result(panel, panel.test_start(), panel.num_days()),
        other => panic!("unknown model {other}"),
    }
}

/// Path of the CIT training checkpoint for one (experiment, market, seed)
/// triple, under `results/checkpoints/`.
pub fn checkpoint_path(experiment: &str, market: &str, seed: u64) -> PathBuf {
    out_dir()
        .join("checkpoints")
        .join(format!("{experiment}_{market}_s{seed}.cit"))
}

/// [`run_model_with`], plus crash-safe checkpointing for the CIT model:
/// when `checkpoint` is `Some`, training auto-saves its full state there
/// every few updates and a final checkpoint on completion, and an existing
/// (non-corrupt) file is loaded first so an interrupted or finished run
/// continues bit-identically instead of starting over. Other models ignore
/// `checkpoint`.
pub fn run_model_ckpt(
    name: &str,
    panel: &AssetPanel,
    scale: Scale,
    seed: u64,
    telemetry: &Telemetry,
    checkpoint: Option<&std::path::Path>,
) -> BacktestResult {
    let Some(path) = checkpoint.filter(|_| name == "CIT") else {
        return run_model_with(name, panel, scale, seed, telemetry);
    };
    let mut cfg = cit_config(scale, seed);
    if cfg.checkpoint_every == 0 {
        cfg.checkpoint_every = 10;
    }
    let fresh = || {
        CrossInsightTrader::new(panel, cfg)
            .with_telemetry(telemetry.clone())
            .with_faults(chaos_injector(telemetry))
            .with_checkpoint(path)
    };
    let mut trader = fresh();
    if path.exists() {
        if let Err(err) = trader.load(path) {
            telemetry.progress(format!(
                "checkpoint {} unusable ({err}); retraining from scratch",
                path.display()
            ));
            trader = fresh();
        }
    }
    trader.train(panel);
    if let Err(err) = trader.save(path) {
        telemetry.progress(format!(
            "warning: final checkpoint {} not written: {err}",
            path.display()
        ));
    }
    run_test_period_with(panel, env_config(scale), &mut trader, telemetry)
}

/// Runs one model across several seeds and returns per-seed metrics plus
/// the mean and standard deviation of each metric — the paper averages over
/// 5 random initialisations.
pub fn run_model_seeds(
    name: &str,
    panel: &AssetPanel,
    scale: Scale,
    seeds: &[u64],
) -> (
    Vec<cit_market::Metrics>,
    cit_market::Metrics,
    cit_market::Metrics,
) {
    assert!(!seeds.is_empty(), "need at least one seed");
    let per_seed: Vec<cit_market::Metrics> = seeds
        .iter()
        .map(|&s| run_model(name, panel, scale, s).metrics)
        .collect();
    let n = per_seed.len() as f64;
    let mean = cit_market::Metrics {
        ar: per_seed.iter().map(|m| m.ar).sum::<f64>() / n,
        sr: per_seed.iter().map(|m| m.sr).sum::<f64>() / n,
        mdd: per_seed.iter().map(|m| m.mdd).sum::<f64>() / n,
        cr: per_seed.iter().map(|m| m.cr).sum::<f64>() / n,
    };
    let var = |f: fn(&cit_market::Metrics) -> f64, mu: f64| {
        (per_seed
            .iter()
            .map(|m| (f(m) - mu) * (f(m) - mu))
            .sum::<f64>()
            / n)
            .sqrt()
    };
    let std = cit_market::Metrics {
        ar: var(|m| m.ar, mean.ar),
        sr: var(|m| m.sr, mean.sr),
        mdd: var(|m| m.mdd, mean.mdd),
        cr: var(|m| m.cr, mean.cr),
    };
    (per_seed, mean, std)
}

/// Prints a paper-style metrics table: one row per model, AR/SR/CR columns
/// per market.
pub fn print_metric_table(markets: &[&str], rows: &[(String, Vec<cit_market::Metrics>)]) {
    print!("{:<12}", "Model");
    for m in markets {
        print!(" | {m:^23}");
    }
    println!();
    print!("{:<12}", "");
    for _ in markets {
        print!(" | {:>7} {:>7} {:>7}", "AR", "SR", "CR");
    }
    println!();
    println!("{}", "-".repeat(12 + markets.len() * 26));
    for (name, metrics) in rows {
        print!("{name:<12}");
        for met in metrics {
            print!(" | {:>7.2} {:>7.2} {:>7.2}", met.ar, met.sr, met.cr);
        }
        println!();
    }
}

/// The output directory for experiment CSVs.
pub fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Writes labelled series to `results/<file>` and reports the path.
pub fn save_series(file: &str, series: &[(String, Vec<f64>)]) {
    let path = out_dir().join(file);
    let csv = cit_market::series_to_csv(series);
    cit_market::save(&path, &csv).expect("write results CSV");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_preset_structure() {
        let ps = panels(Scale::Smoke);
        assert_eq!(ps.len(), 3);
        assert!(ps[0].num_assets() >= ps[1].num_assets());
        assert!(ps[1].num_assets() >= ps[2].num_assets());
    }

    #[test]
    fn online_models_run_at_smoke_scale() {
        let p = &panels(Scale::Smoke)[2];
        for name in ["OLMAR", "CRP", "ONS", "UP", "EG", "Market"] {
            let r = run_model(name, p, Scale::Smoke, 1);
            assert!(r.metrics.mdd <= 1.0, "{name}");
        }
    }

    #[test]
    fn preset_panels_pass_the_quality_guard() {
        for scale in [Scale::Smoke, Scale::Paper] {
            let ps = panels(scale);
            require_clean_panels(&ps, &Telemetry::disabled())
                .unwrap_or_else(|e| panic!("{scale} presets must be clean: {e}"));
        }
    }

    #[test]
    fn quality_guard_names_dirty_panels() {
        // An outlier day the guard must catch (constructed panels cannot
        // hold non-finite prices, so outliers are the reachable critical).
        let mut data = Vec::new();
        for t in 0..40usize {
            let c = if t == 20 {
                500.0
            } else {
                10.0 + t as f64 * 0.01
            };
            data.extend_from_slice(&[c, c * 1.01, c * 0.99, c]);
        }
        let panel = AssetPanel::new("DIRTY", 40, 1, data, 30);
        let err = require_clean_panels(std::slice::from_ref(&panel), &Telemetry::disabled())
            .expect_err("outlier day must trip the guard");
        assert!(err.contains("DIRTY"), "{err}");
        assert!(err.contains("A000"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let p = &panels(Scale::Smoke)[2];
        let _ = run_model("nope", p, Scale::Smoke, 1);
    }

    #[test]
    fn cit_checkpoint_resume_reproduces_backtest() {
        let p = &panels(Scale::Smoke)[2];
        let mut path = std::env::temp_dir();
        path.push(format!("cit_bench_ckpt_{}.cit", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // First run trains from scratch and leaves a final checkpoint.
        let a = run_model_ckpt(
            "CIT",
            p,
            Scale::Smoke,
            3,
            &Telemetry::disabled(),
            Some(&path),
        );
        assert!(path.exists(), "final checkpoint written");
        // Second run resumes from the completed checkpoint (no retraining)
        // and must reproduce the backtest bitwise.
        let b = run_model_ckpt(
            "CIT",
            p,
            Scale::Smoke,
            3,
            &Telemetry::disabled(),
            Some(&path),
        );
        assert_eq!(a.wealth, b.wealth, "resumed backtest must match bitwise");
        let _ = std::fs::remove_file(&path);
    }
}
