//! Regenerates Figure 6: daily return of each horizon policy on the H.K.
//! market (same 3-policy run as Figure 5), with a volatility summary that
//! mirrors the paper's observation — the short-horizon policy's daily
//! returns are the most volatile.

use cit_bench::{cit_config, experiment_telemetry, finish_run, panels, save_series, Scale};
use cit_core::{per_policy_curves, CrossInsightTrader};

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig6", scale, seed);
    let hk = &panels(scale)[1];
    let mut cfg = cit_config(scale, seed);
    cfg.num_policies = 3;
    tel.progress(format!("training 3-policy CIT on {} ...", hk.name()));
    let mut trader = CrossInsightTrader::new(hk, cfg).with_telemetry(tel.clone());
    trader.train(hk);

    let curves = per_policy_curves(&mut trader, hk, hk.test_start(), hk.num_days(), 1e-3);
    save_series("fig6_hk_policy_daily_returns.csv", &curves.daily_returns);

    println!("Figure 6 — daily returns per policy on H.K. (scale {scale:?})\n");
    println!("{:<10} {:>12} {:>12}", "policy", "mean ret", "volatility");
    for (label, d) in &curves.daily_returns {
        let n = d.len() as f64;
        let mean = d.iter().sum::<f64>() / n;
        let var = d.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
        println!("{:<10} {:>12.5} {:>12.5}", label, mean, var.sqrt());
    }
    println!("\n(policy 1 = long-term .. policy 3 = short-term; the paper reports the");
    println!("short-term policy as the most volatile and least profitable)");
    finish_run(&tel);
}
