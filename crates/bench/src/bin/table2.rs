//! Regenerates Table II: statistics of the three (synthetic) datasets.

use cit_bench::{experiment_telemetry, finish_run, panels, Scale};

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("table2", scale, seed);
    let ps = panels(scale);
    println!("Table II — statistics of datasets (scale {scale:?})\n");
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "Dataset", "Num. of assets", "Training days", "Testing days"
    );
    for p in &ps {
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            p.name(),
            p.num_assets(),
            p.test_start(),
            p.num_days() - p.test_start()
        );
    }
    println!("\nPaper reference: U.S. 80 assets, H.K. 45, China 34; train 2009-01..2020-06.");
    finish_run(&tel);
}
