//! Offline backtest of the serving plane's regime meta-router: train a
//! small roster of decision models under different seeds, replay the
//! test period once per model *and* once under the router (which picks a
//! slot per day from the trailing regime features, exactly as
//! `open {"model":"auto"}` does at session-open time), and report
//! AR/SR/MDD/CR for every curve side by side.
//!
//! The wealth accounting mirrors `cit_core::per_policy_curves`: execute
//! the chosen final action, pay proportional transaction costs on
//! turnover against drifted holdings, compound. All curves share one
//! deterministic pass, so the single-model rows are the exact
//! alternatives the router chose between.
//!
//! Usage: `routerbench [--quick] [--seed <u64>] [--models <K>]
//! [--router-seed <u64>] [--out <PATH>]`. Writes the machine-readable
//! table to `results/router_backtest.json` (override with `--out`) and
//! leaves the trained checkpoints in `results/checkpoints/` — the CI
//! multi-model smoke reuses them as `cit-serve --model` slots.

use cit_bench::out_dir;
use cit_core::{regime_features, CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::metrics::{compute, Metrics};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{RegimeRouter, RouterPolicy};
use std::fmt::Write as _;

/// The `[m·4]` OHLC wire rows for panel days `[0, to)` — the same shape
/// the server's router sees on an `open` request.
fn rows(panel: &AssetPanel, to: usize) -> Vec<Vec<f64>> {
    (0..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

/// One compounding wealth curve with drifted-holdings turnover costs.
struct Curve {
    wealth: Vec<f64>,
    daily: Vec<f64>,
    held: Vec<f64>,
}

impl Curve {
    fn new(num_assets: usize) -> Curve {
        Curve {
            wealth: vec![1.0],
            daily: Vec::new(),
            held: vec![1.0 / num_assets as f64; num_assets],
        }
    }

    /// Executes `target` into the day's price relatives `rel`.
    fn step(&mut self, target: &[f64], rel: &[f64], cost: f64) {
        let turnover: f64 = target
            .iter()
            .zip(&self.held)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let growth: f64 = target.iter().zip(rel).map(|(w, r)| w * r).sum();
        let net = (growth * (1.0 - cost * turnover)).max(1e-9);
        let w = self.wealth.last().expect("seeded") * net;
        self.wealth.push(w);
        self.daily.push(net - 1.0);
        let mut drifted: Vec<f64> = target.iter().zip(rel).map(|(w, r)| w * r).collect();
        let norm: f64 = drifted.iter().sum();
        if norm > 0.0 {
            drifted.iter_mut().for_each(|w| *w /= norm);
        }
        self.held = drifted;
    }

    fn metrics(&self) -> Metrics {
        compute(&self.wealth, &self.daily)
    }
}

fn metrics_json(m: &Metrics) -> String {
    format!(
        "{{ \"ar\": {:.6}, \"sr\": {:.6}, \"mdd\": {:.6}, \"cr\": {:.6} }}",
        m.ar, m.sr, m.mdd, m.cr
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut num_models = 3usize;
    let mut router_seed = 0u64;
    let mut out_path = out_dir().join("router_backtest.json");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes a u64");
                i += 2;
            }
            "--models" if i + 1 < args.len() => {
                num_models = args[i + 1].parse().expect("--models takes a usize");
                assert!(num_models >= 2, "--models needs at least 2 slots to route");
                i += 2;
            }
            "--router-seed" if i + 1 < args.len() => {
                router_seed = args[i + 1].parse().expect("--router-seed takes a u64");
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone().into();
                i += 2;
            }
            other => panic!(
                "unknown argument {other}; supported: --quick, --seed, --models, --router-seed, --out"
            ),
        }
    }

    let (num_days, test_start) = if quick { (180, 140) } else { (320, 200) };
    let panel = SynthConfig {
        num_assets: 4,
        num_days,
        test_start,
        seed,
        ..Default::default()
    }
    .generate();
    let cost = 1e-3;

    // Train the roster: one architecture, different initialisation seeds,
    // checkpointed through the real save/load path so the CI smoke can
    // serve the exact same parameters.
    let ckpt_dir = out_dir().join("checkpoints");
    std::fs::create_dir_all(&ckpt_dir).expect("create results/checkpoints");
    let mut models = Vec::new();
    let mut labels = Vec::new();
    for k in 0..num_models {
        let model_seed = seed + k as u64;
        let cfg = CitConfig::smoke(model_seed);
        eprintln!("routerbench: training model {k} (seed {model_seed})...");
        let mut trader = CrossInsightTrader::new(&panel, cfg);
        trader.train(&panel);
        let ckpt = ckpt_dir.join(format!("routerbench_m{k}.cit"));
        trader.save(&ckpt).expect("save checkpoint");
        let model = DecisionModel::from_checkpoint(&ckpt, cfg, panel.num_assets())
            .expect("load checkpoint");
        models.push(model);
        labels.push(format!("model_{k}"));
    }

    let router = RegimeRouter::new(router_seed);
    let cfg0 = *models[0].config();
    let all_rows = rows(&panel, panel.num_days());

    // One deterministic pass: every model keeps its own prev-action chain
    // and DWT cache warm (as a pinned serving session would), the router
    // curve executes whichever slot the day's trailing regime picked.
    let mut prevs: Vec<_> = models.iter().map(|m| m.uniform_prev_actions()).collect();
    let mut caches: Vec<_> = models.iter().map(|m| m.new_cache()).collect();
    let mut curves: Vec<Curve> = (0..num_models)
        .map(|_| Curve::new(panel.num_assets()))
        .collect();
    let mut router_curve = Curve::new(panel.num_assets());
    let mut picks = vec![0usize; num_models];
    for t in test_start..panel.num_days() - 1 {
        let features = regime_features(
            &all_rows[..t + 1],
            panel.num_assets(),
            cfg0.window,
            cfg0.num_policies,
        );
        let pick = router.route(&features, num_models);
        picks[pick] += 1;
        let rel = panel.price_relatives(t + 1);
        let mut router_action = None;
        for k in 0..num_models {
            let out = models[k].decide(&panel, t, &prevs[k], &mut caches[k]);
            prevs[k] = out.pre_actions.clone();
            curves[k].step(&out.final_action, &rel, cost);
            if k == pick {
                router_action = Some(out.final_action);
            }
        }
        router_curve.step(&router_action.expect("picked slot decided"), &rel, cost);
    }

    let router_m = router_curve.metrics();
    println!(
        "routerbench: {} test days, {num_models} models",
        panel.num_days() - 1 - test_start
    );
    println!(
        "  {:<10} {:>9} {:>9} {:>9} {:>9}  picks",
        "curve", "AR", "SR", "MDD", "CR"
    );
    let row = |label: &str, m: &Metrics, picks: Option<usize>| {
        println!(
            "  {:<10} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {}",
            label,
            m.ar,
            m.sr,
            m.mdd,
            m.cr,
            picks.map_or("-".to_string(), |p| p.to_string())
        );
    };
    row("router", &router_m, None);
    for (k, c) in curves.iter().enumerate() {
        row(&labels[k], &c.metrics(), Some(picks[k]));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"router_backtest\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"router_seed\": {router_seed},");
    let _ = writeln!(json, "  \"num_models\": {num_models},");
    let _ = writeln!(
        json,
        "  \"test_days\": {},",
        panel.num_days() - 1 - test_start
    );
    let _ = writeln!(json, "  \"transaction_cost\": {cost},");
    let _ = writeln!(json, "  \"router\": {},", metrics_json(&router_m));
    let _ = writeln!(json, "  \"models\": {{");
    for (k, c) in curves.iter().enumerate() {
        let comma = if k + 1 < num_models { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seed\": {}, \"picks\": {}, \"checkpoint\": \"checkpoints/routerbench_m{k}.cit\", \"metrics\": {} }}{comma}",
            labels[k],
            seed + k as u64,
            picks[k],
            metrics_json(&c.metrics())
        );
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("write {}: {e}", out_path.display()));
    println!("wrote {}", out_path.display());
}
