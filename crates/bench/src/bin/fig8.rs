//! Regenerates Figure 8: training learning curves of the counterfactual
//! critic versus the shared-Q and Dec-critic variants on all three
//! markets.

use cit_bench::{
    cit_config, env_config, experiment_telemetry, finish_run, panels, save_series, Scale,
};
use cit_core::{CriticMode, CrossInsightTrader};
use cit_market::run_test_period_with;

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig8", scale, seed);
    let ps = panels(scale);
    let modes = [
        CriticMode::Counterfactual,
        CriticMode::SharedQ,
        CriticMode::Decentralized,
    ];
    println!("Figure 8 — critic ablation learning curves (scale {scale:?}, seed {seed})\n");

    for p in &ps {
        let mut curves = Vec::new();
        println!("{}:", p.name());
        for mode in modes {
            tel.progress(format!("training {} on {} ...", mode.label(), p.name()));
            let mut cfg = cit_config(scale, seed);
            cfg.critic_mode = mode;
            let mut trader = CrossInsightTrader::new(p, cfg).with_telemetry(tel.clone());
            let report = trader.train(p);
            let res = run_test_period_with(p, env_config(scale), &mut trader, &tel);
            println!(
                "  {:<15} final-quarter train reward {:>9.5}   test AR {:>6.3}",
                mode.label(),
                report.final_mean_reward(),
                res.metrics.ar
            );
            curves.push((mode.label().to_string(), report.update_rewards.clone()));
        }
        save_series(&format!("fig8_{}_learning_curves.csv", p.name()), &curves);
        println!();
    }
    println!("(curves are mean reward per update; the paper reports the counterfactual");
    println!("variant above shared-Q, with Dec-critic lowest)");
    finish_run(&tel);
}
