//! Regenerates Table IV: performance versus the number of horizon-specific
//! policies (A2C = no horizon policies, then 2–5 policies).

use cit_bench::{
    chaos_injector, checkpoint_path, cit_config, env_config, experiment_telemetry, finish_run,
    panels, print_metric_table, require_clean_panels, run_model_with, BenchOpts, Scale,
};
use cit_core::CrossInsightTrader;
use cit_market::run_test_period_with;

fn main() {
    let opts = BenchOpts::from_args();
    let (scale, seed) = (opts.scale, opts.seed);
    let tel = experiment_telemetry("table4", scale, seed);
    let ps = panels(scale);
    if let Err(err) = require_clean_panels(&ps, &tel) {
        eprintln!("table4 refusing to run: {err}");
        std::process::exit(2);
    }
    let market_names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
    println!("Table IV — number of horizon-specific policies (scale {scale:?}, seed {seed})\n");

    let mut rows = Vec::new();

    // A2C row: the degenerate single-policy case.
    let mut a2c_metrics = Vec::new();
    for p in &ps {
        tel.progress(format!("running A2C on {} ...", p.name()));
        a2c_metrics.push(run_model_with("A2C", p, scale, seed, &tel).metrics);
    }
    rows.push(("A2C".to_string(), a2c_metrics));

    let policy_counts: &[usize] = match scale {
        Scale::Smoke => &[2, 3],
        Scale::Paper => &[2, 3, 4, 5],
    };
    for &n in policy_counts {
        let mut metrics = Vec::new();
        for p in &ps {
            tel.progress(format!("running CIT({n} policies) on {} ...", p.name()));
            let mut cfg = cit_config(scale, seed);
            cfg.num_policies = n;
            if opts.resume && cfg.checkpoint_every == 0 {
                cfg.checkpoint_every = 10;
            }
            let mut trader = CrossInsightTrader::new(p, cfg)
                .with_telemetry(tel.clone())
                .with_faults(chaos_injector(&tel));
            if opts.resume {
                let ckpt = checkpoint_path(&format!("table4_n{n}"), p.name(), seed);
                trader.set_checkpoint_path(Some(ckpt.clone()));
                if ckpt.exists() {
                    if let Err(err) = trader.load(&ckpt) {
                        tel.progress(format!(
                            "checkpoint {} unusable ({err}); retraining from scratch",
                            ckpt.display()
                        ));
                        trader = CrossInsightTrader::new(p, cfg)
                            .with_telemetry(tel.clone())
                            .with_faults(chaos_injector(&tel));
                        trader.set_checkpoint_path(Some(ckpt.clone()));
                    }
                }
                trader.train(p);
                if let Err(err) = trader.save(&ckpt) {
                    tel.progress(format!("warning: final checkpoint not written: {err}"));
                }
            } else {
                trader.train(p);
            }
            let res = run_test_period_with(p, env_config(scale), &mut trader, &tel);
            metrics.push(res.metrics);
        }
        rows.push((format!("{n} policies"), metrics));
    }
    print_metric_table(&market_names, &rows);
    finish_run(&tel);
}
