//! Regenerates Table IV: performance versus the number of horizon-specific
//! policies (A2C = no horizon policies, then 2–5 policies).

use cit_bench::{
    cit_config, env_config, experiment_telemetry, finish_run, panels, print_metric_table,
    run_model_with, Scale,
};
use cit_core::CrossInsightTrader;
use cit_market::run_test_period_with;

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("table4", scale, seed);
    let ps = panels(scale);
    let market_names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
    println!("Table IV — number of horizon-specific policies (scale {scale:?}, seed {seed})\n");

    let mut rows = Vec::new();

    // A2C row: the degenerate single-policy case.
    let mut a2c_metrics = Vec::new();
    for p in &ps {
        tel.progress(format!("running A2C on {} ...", p.name()));
        a2c_metrics.push(run_model_with("A2C", p, scale, seed, &tel).metrics);
    }
    rows.push(("A2C".to_string(), a2c_metrics));

    let policy_counts: &[usize] = match scale {
        Scale::Smoke => &[2, 3],
        Scale::Paper => &[2, 3, 4, 5],
    };
    for &n in policy_counts {
        let mut metrics = Vec::new();
        for p in &ps {
            tel.progress(format!("running CIT({n} policies) on {} ...", p.name()));
            let mut cfg = cit_config(scale, seed);
            cfg.num_policies = n;
            let mut trader = CrossInsightTrader::new(p, cfg).with_telemetry(tel.clone());
            trader.train(p);
            let res = run_test_period_with(p, env_config(scale), &mut trader, &tel);
            metrics.push(res.metrics);
        }
        rows.push((format!("{n} policies"), metrics));
    }
    print_metric_table(&market_names, &rows);
    finish_run(&tel);
}
