//! Regenerates Figure 7: accumulative return of the actor with different
//! neural-network bodies — ours (TCN + spatial attention), ours (GRU),
//! plain GRU and plain MLP.

use cit_bench::{
    cit_config, env_config, experiment_telemetry, finish_run, panels, save_series, Scale,
};
use cit_core::{ActorBody, CrossInsightTrader};
use cit_market::run_test_period_with;

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig7", scale, seed);
    let ps = panels(scale);
    let bodies = [
        ActorBody::TcnAttention,
        ActorBody::GruAttention,
        ActorBody::GruOnly,
        ActorBody::MlpOnly,
    ];
    println!("Figure 7 — actor network ablation (scale {scale:?}, seed {seed})\n");

    for p in &ps {
        let mut curves = Vec::new();
        println!("{}:", p.name());
        for body in bodies {
            tel.progress(format!("running {} on {} ...", body.label(), p.name()));
            let mut cfg = cit_config(scale, seed);
            cfg.actor_body = body;
            let mut trader = CrossInsightTrader::new(p, cfg).with_telemetry(tel.clone());
            trader.train(p);
            let res = run_test_period_with(p, env_config(scale), &mut trader, &tel);
            println!(
                "  {:<12} AR {:>6.3}  SR {:>6.2}  CR {:>6.2}",
                body.label(),
                res.metrics.ar,
                res.metrics.sr,
                res.metrics.cr
            );
            curves.push((body.label().to_string(), res.wealth.clone()));
        }
        save_series(&format!("fig7_{}.csv", p.name()), &curves);
        println!();
    }
    finish_run(&tel);
}
