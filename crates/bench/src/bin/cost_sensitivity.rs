//! Extension experiment (not in the paper): transaction-cost sensitivity.
//! Trains CIT once per market, then evaluates it and three reference
//! strategies across a sweep of proportional cost levels. High-turnover
//! strategies should degrade fastest — a design-choice ablation for the
//! cost term of the environment.

use cit_bench::{cit_config, experiment_telemetry, finish_run, panels, save_series, window, Scale};
use cit_core::CrossInsightTrader;
use cit_market::{run_test_period, EnvConfig};
use cit_online::{Crp, Olmar};

const COSTS: [f64; 5] = [0.0, 5e-4, 1e-3, 2e-3, 5e-3];

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("cost_sensitivity", scale, seed);
    let ps = panels(scale);
    println!("Cost sensitivity (scale {scale:?}, seed {seed})\n");

    for p in &ps {
        tel.progress(format!("training CIT on {} ...", p.name()));
        let mut trader =
            CrossInsightTrader::new(p, cit_config(scale, seed)).with_telemetry(tel.clone());
        trader.train(p);

        println!("{} — AR by transaction cost:", p.name());
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "model", "0bp", "5bp", "10bp", "20bp", "50bp"
        );
        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
        for model in ["CIT", "CRP", "OLMAR"] {
            let mut ars = Vec::new();
            for &cost in &COSTS {
                let env = EnvConfig {
                    window: window(scale),
                    transaction_cost: cost,
                };
                let res = match model {
                    "CIT" => run_test_period(p, env, &mut trader),
                    "CRP" => run_test_period(p, env, &mut Crp),
                    _ => run_test_period(p, env, &mut Olmar::default()),
                };
                ars.push(res.metrics.ar);
            }
            println!(
                "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                model, ars[0], ars[1], ars[2], ars[3], ars[4]
            );
            rows.push((model.to_string(), ars));
        }
        save_series(&format!("cost_sensitivity_{}.csv", p.name()), &rows);
        println!();
    }
    println!("(each column is a proportional cost in basis points; OLMAR's heavy");
    println!("turnover makes it the most cost-sensitive, CRP the least)");
    finish_run(&tel);
}
