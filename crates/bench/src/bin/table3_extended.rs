//! Extension of Table III with every related-work online method the paper
//! surveys (Anticor, PAMR, CWMR, RMR, CORN), buy-and-hold, the hindsight
//! BCRP upper bound, plus the extended risk report (Sortino / VaR / ES /
//! turnover / concentration) for the headline models.

use cit_bench::{
    env_config, experiment_telemetry, finish_run, panels, print_metric_table, run_model_with, Scale,
};
use cit_market::risk::risk_report;
use cit_market::run_test_period;
use cit_online::all_strategies;

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("table3_extended", scale, seed);
    let ps = panels(scale);
    let market_names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
    println!("Extended Table III — all online methods + risk report (scale {scale:?})\n");

    // All online methods (cheap — no training).
    let mut rows = Vec::new();
    let strategy_names: Vec<String> = all_strategies().iter().map(|s| s.name()).collect();
    for name in &strategy_names {
        let mut metrics = Vec::new();
        for p in &ps {
            // Recreate per market: strategies are stateful.
            let mut s = all_strategies()
                .into_iter()
                .find(|s| s.name() == *name)
                .expect("known strategy");
            let res = run_test_period(p, env_config(scale), s.as_mut());
            metrics.push(res.metrics);
        }
        rows.push((name.clone(), metrics));
    }
    print_metric_table(&market_names, &rows);

    // Extended risk report for the headline learned models on market 0.
    println!("\nExtended risk report ({}):", ps[0].name());
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "Sortino", "VaR95", "ES95", "turnover", "concentr"
    );
    for model in ["CIT", "EIIE", "A2C", "CRP"] {
        tel.progress(format!("running {model} ..."));
        let res = run_model_with(model, &ps[0], scale, seed, &tel);
        let rep = risk_report(&res.daily_returns, &res.weights);
        println!(
            "{:<12} {:>9.2} {:>9.4} {:>9.4} {:>9.3} {:>9.3}",
            model, rep.sortino, rep.var95, rep.es95, rep.turnover, rep.concentration
        );
    }
    finish_run(&tel);
}
