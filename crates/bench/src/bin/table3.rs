//! Regenerates Table III: AR / SR / CR of every model on all three markets,
//! and the equity-curve series behind Figure 4 (saved to CSV as a side
//! product; the dedicated `fig4` binary only re-plots them).

use cit_bench::{
    checkpoint_path, experiment_telemetry, finish_run, panels, print_metric_table,
    require_clean_panels, run_model_ckpt, save_series, BenchOpts,
};
use cit_telemetry::Record;

const MODELS: [&str; 13] = [
    "OLMAR",
    "CRP",
    "ONS",
    "UP",
    "EG", // online learning
    "EIIE",
    "A2C",
    "DDPG",
    "PPO",
    "SARL",
    "DeepTrader",
    "CIT", // deep RL
    "Market",
];

fn main() {
    let opts = BenchOpts::from_args();
    let (scale, seed) = (opts.scale, opts.seed);
    let tel = experiment_telemetry("table3", scale, seed);
    let ps = panels(scale);
    if let Err(err) = require_clean_panels(&ps, &tel) {
        eprintln!("table3 refusing to run: {err}");
        std::process::exit(2);
    }
    let market_names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
    println!("Table III — performance comparison (scale {scale:?}, seed {seed})\n");

    let mut rows = Vec::new();
    let mut curves_per_market: Vec<Vec<(String, Vec<f64>)>> = vec![Vec::new(); ps.len()];
    for model in MODELS {
        let mut metrics = Vec::new();
        for (mi, p) in ps.iter().enumerate() {
            tel.progress(format!("running {model} on {} ...", p.name()));
            let ckpt = opts
                .resume
                .then(|| checkpoint_path("table3", p.name(), seed));
            let res = run_model_ckpt(model, p, scale, seed, &tel, ckpt.as_deref());
            metrics.push(res.metrics);
            curves_per_market[mi].push((model.to_string(), res.wealth.clone()));
        }
        rows.push((model.to_string(), metrics));
    }
    print_metric_table(&market_names, &rows);

    for (p, curves) in ps.iter().zip(&curves_per_market) {
        save_series(&format!("fig4_{}.csv", p.name()), curves);
    }
    // Machine-readable metrics dump for EXPERIMENTS.md: one flat JSON
    // object per (model, market) pair.
    let mut jsonl = String::new();
    for (name, ms) in &rows {
        for (m, mk) in ms.iter().zip(&market_names) {
            let rec = Record::new("table3.metric")
                .with("model", name.as_str())
                .with("market", *mk)
                .with("ar", m.ar)
                .with("sr", m.sr)
                .with("cr", m.cr)
                .with("mdd", m.mdd);
            jsonl.push_str(&rec.to_json());
            jsonl.push('\n');
        }
    }
    let path = cit_bench::out_dir().join("table3.jsonl");
    cit_market::save(&path, &jsonl).expect("write");
    println!("wrote {}", path.display());
    finish_run(&tel);
}
