//! Regenerates Table III: AR / SR / CR of every model on all three markets,
//! and the equity-curve series behind Figure 4 (saved to CSV as a side
//! product; the dedicated `fig4` binary only re-plots them).

use cit_bench::{panels, print_metric_table, run_model, save_series, Scale};

const MODELS: [&str; 13] = [
    "OLMAR", "CRP", "ONS", "UP", "EG", // online learning
    "EIIE", "A2C", "DDPG", "PPO", "SARL", "DeepTrader", "CIT", // deep RL
    "Market",
];

fn main() {
    let (scale, seed) = Scale::from_args();
    let ps = panels(scale);
    let market_names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
    println!("Table III — performance comparison (scale {scale:?}, seed {seed})\n");

    let mut rows = Vec::new();
    let mut curves_per_market: Vec<Vec<(String, Vec<f64>)>> = vec![Vec::new(); ps.len()];
    for model in MODELS {
        let mut metrics = Vec::new();
        for (mi, p) in ps.iter().enumerate() {
            eprintln!("running {model} on {} ...", p.name());
            let res = run_model(model, p, scale, seed);
            metrics.push(res.metrics);
            curves_per_market[mi].push((model.to_string(), res.wealth.clone()));
        }
        rows.push((model.to_string(), metrics));
    }
    print_metric_table(&market_names, &rows);

    for (p, curves) in ps.iter().zip(&curves_per_market) {
        save_series(&format!("fig4_{}.csv", p.name()), curves);
    }
    // Machine-readable metrics dump for EXPERIMENTS.md.
    let json: Vec<serde_json::Value> = rows
        .iter()
        .map(|(name, ms)| {
            serde_json::json!({
                "model": name,
                "metrics": ms.iter().zip(&market_names).map(|(m, mk)| serde_json::json!({
                    "market": mk, "ar": m.ar, "sr": m.sr, "cr": m.cr, "mdd": m.mdd,
                })).collect::<Vec<_>>(),
            })
        })
        .collect();
    let path = cit_bench::out_dir().join("table3.json");
    cit_market::save(&path, &serde_json::to_string_pretty(&json).expect("serialise")).expect("write");
    println!("wrote {}", path.display());
}
