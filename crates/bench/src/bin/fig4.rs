//! Regenerates Figure 4: cumulative return vs trading day for every model
//! on all three markets (CSV per market; OLMAR included here even though
//! the paper drops it from the plot for poor performance).

use cit_bench::{experiment_telemetry, finish_run, panels, run_model_with, save_series, Scale};

const MODELS: [&str; 12] = [
    "CRP",
    "ONS",
    "UP",
    "EG",
    "EIIE",
    "A2C",
    "DDPG",
    "PPO",
    "SARL",
    "DeepTrader",
    "CIT",
    "Market",
];

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig4", scale, seed);
    let ps = panels(scale);
    println!("Figure 4 — accumulative return during the test period (scale {scale:?})\n");
    for p in &ps {
        let mut curves = Vec::new();
        for model in MODELS {
            tel.progress(format!("running {model} on {} ...", p.name()));
            let res = run_model_with(model, p, scale, seed, &tel);
            curves.push((model.to_string(), res.wealth.clone()));
        }
        save_series(&format!("fig4_{}.csv", p.name()), &curves);
        // Terminal summary: final wealth ranking.
        let mut finals: Vec<(String, f64)> = curves
            .iter()
            .map(|(n, c)| (n.clone(), *c.last().expect("non-empty curve")))
            .collect();
        finals.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!("{} final wealth ranking:", p.name());
        for (name, w) in finals {
            println!("  {name:<12} {w:.3}");
        }
        println!();
    }
    finish_run(&tel);
}
