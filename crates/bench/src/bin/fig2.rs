//! Regenerates Figure 2: DWT horizon decomposition of a price series into
//! long- and short-term bands (CSV series + terminal summary).

use cit_bench::{experiment_telemetry, finish_run, panels, save_series, Scale};
use cit_dwt::timed;

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig2", scale, seed);
    let p = &panels(scale)[0];
    let t = p.num_days() - 1;
    let z = 128.min(p.num_days());
    let series = p.close_window(t, 0, z);

    for granularity in [2usize, 3] {
        tel.progress(format!(
            "decomposing {} closes at granularity {granularity}",
            p.name()
        ));
        let bands = timed::horizon_scales(&tel, &series, granularity);
        let mut out = vec![("price".to_string(), series.clone())];
        for (k, b) in bands.iter().enumerate() {
            let label = if k == 0 {
                "long_term".to_string()
            } else if k == granularity - 1 {
                "short_term".to_string()
            } else {
                format!("mid_term_{k}")
            };
            out.push((label, b.clone()));
        }
        save_series(&format!("fig2_granularity{granularity}.csv"), &out);

        let tv = |s: &[f64]| s.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        println!("granularity {granularity}:");
        for (label, b) in &out[1..] {
            println!("  {label:<12} total-variation {:>10.3}", tv(b));
        }
    }
    println!("\nLong-term bands vary slowly (trend); short-term bands capture fluctuations,");
    println!("mirroring Figure 2's low/high-frequency scales.");
    finish_run(&tel);
}
