//! Regenerates Figure 5: cumulative return of each horizon policy, the
//! fused cross-insight policy and the index on the H.K. market, using a
//! 3-policy model (short / middle / long horizons) as in the paper.

use cit_bench::{cit_config, experiment_telemetry, finish_run, panels, save_series, Scale};
use cit_core::{per_policy_curves, CrossInsightTrader};

fn main() {
    let (scale, seed) = Scale::from_args();
    let tel = experiment_telemetry("fig5", scale, seed);
    let hk = &panels(scale)[1];
    let mut cfg = cit_config(scale, seed);
    cfg.num_policies = 3;
    tel.progress(format!("training 3-policy CIT on {} ...", hk.name()));
    let mut trader = CrossInsightTrader::new(hk, cfg).with_telemetry(tel.clone());
    trader.train(hk);

    let curves = per_policy_curves(&mut trader, hk, hk.test_start(), hk.num_days(), 1e-3);
    save_series("fig5_hk_policy_wealth.csv", &curves.wealth);

    println!("Figure 5 — per-policy cumulative return on H.K. (scale {scale:?})");
    println!("(policy 1 = long-term horizon, policy 3 = short-term horizon)\n");
    for (label, c) in &curves.wealth {
        println!(
            "  {label:<10} final wealth {:.3}",
            c.last().expect("non-empty")
        );
    }
    finish_run(&tel);
}
