//! Serving latency/throughput benchmark: trains a small checkpoint,
//! serves it with `cit-serve`, and drives 1/4/16 concurrent clients over
//! real TCP connections. Reports p50/p95/p99 request latency and req/s
//! per concurrency level, writing the machine-readable summary to
//! `BENCH_serve.json` at the repo root (alongside `BENCH_compute.json`).
//!
//! Usage: `servebench [--quick] [--seed <u64>]` — `--quick` shrinks the
//! request counts to CI-smoke size.

use cit_bench::out_dir;
use cit_core::{CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{Client, Request, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::Instant;

/// One concurrency level's measurements: client-side quantiles plus the
/// server's own last-window view from its `stats` op.
struct Level {
    clients: usize,
    requests: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    req_per_s: f64,
    srv: cit_serve::WindowStats,
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes a u64");
                i += 2;
            }
            other => panic!("unknown argument {other}; supported: --quick, --seed"),
        }
    }
    let per_client = if quick { 25 } else { 250 };
    let levels = [1usize, 4, 16];

    // Train a small checkpoint so the server exercises the real
    // load-from-disk path.
    let panel = SynthConfig {
        num_assets: 4,
        num_days: 260,
        test_start: 200,
        seed,
        ..Default::default()
    }
    .generate();
    let cfg = CitConfig::smoke(seed);
    eprintln!("servebench: training smoke checkpoint (seed {seed})...");
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    trader.train(&panel);
    let ckpt_dir = out_dir().join("checkpoints");
    std::fs::create_dir_all(&ckpt_dir).expect("create results/checkpoints");
    let ckpt = ckpt_dir.join(format!("servebench_s{seed}.cit"));
    trader.save(&ckpt).expect("save checkpoint");
    drop(trader);

    let mut measured = Vec::new();
    for &clients in &levels {
        let model = DecisionModel::from_checkpoint(&ckpt, cfg, panel.num_assets())
            .expect("load checkpoint");
        let server = Server::start(model, ServeConfig::default()).expect("start server");
        let addr = server.addr();
        let history = panel.test_start();
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|w| {
                let panel = panel.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let session = format!("bench{w}");
                    let opened = c
                        .call(&Request::Open {
                            session: session.clone(),
                            prices: rows(&panel, 0, history),
                        })
                        .expect("open");
                    assert!(opened.ok(), "{:?}", opened.error_message());
                    let mut latencies = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        // Walk forward while panel days last, then keep
                        // deciding on the final day (same compute cost).
                        let t = history + r;
                        let prices = if t < panel.num_days() {
                            rows(&panel, t, t + 1)
                        } else {
                            Vec::new()
                        };
                        let req = Request::Decide {
                            session: session.clone(),
                            prices,
                        };
                        let t0 = Instant::now();
                        let reply = c.call(&req).expect("decide");
                        latencies.push(t0.elapsed().as_secs_f64());
                        assert!(reply.ok(), "request {r}: {:?}", reply.error_message());
                    }
                    latencies
                })
            })
            .collect();
        let mut all: Vec<f64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        let wall = started.elapsed().as_secs_f64();
        // The server's own view over the wire, before shutting it down:
        // the trailing 10 s window covers (at least the tail of) the run.
        let srv = {
            let mut c = Client::connect(addr).expect("connect for stats");
            let stats = c
                .call(&Request::Stats)
                .expect("stats request")
                .stats()
                .expect("typed stats payload");
            stats
                .windows
                .into_iter()
                .find(|w| w.secs == 10)
                .expect("10s window digest")
        };
        server.shutdown();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let level = Level {
            clients,
            requests: all.len(),
            p50_us: quantile_us(&all, 0.50),
            p95_us: quantile_us(&all, 0.95),
            p99_us: quantile_us(&all, 0.99),
            req_per_s: all.len() as f64 / wall,
            srv,
        };
        println!(
            "clients {:>2}: {:>5} reqs  p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us  {:>8.1} req/s",
            level.clients, level.requests, level.p50_us, level.p95_us, level.p99_us, level.req_per_s
        );
        println!(
            "            server 10s window: p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us  {:>8.1} req/s",
            level.srv.p50_us, level.srv.p95_us, level.srv.p99_us, level.srv.req_per_s
        );
        measured.push(level);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"cit-serve\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    let _ = writeln!(json, "  \"levels\": {{");
    for (i, l) in measured.iter().enumerate() {
        let comma = if i + 1 < measured.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"c{}\": {{ \"clients\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"req_per_s\": {:.1}, \"server\": {{ \"window_s\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"req_per_s\": {:.1} }} }}{comma}",
            l.clients, l.clients, l.requests, l.p50_us, l.p95_us, l.p99_us, l.req_per_s,
            l.srv.secs, l.srv.requests, l.srv.p50_us, l.srv.p95_us, l.srv.p99_us, l.srv.req_per_s
        );
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    std::fs::remove_file(&ckpt).ok();
}
