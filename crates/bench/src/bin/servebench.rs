//! Serving latency/throughput benchmark: trains a small checkpoint,
//! serves it with `cit-serve`, and drives concurrent clients over real
//! TCP connections — 1/4/16 clients inside capacity plus 64/256/1024
//! clients of sustained overload (offered load above the bounded
//! decision queue's capacity). Connections stay open for a whole level;
//! every client counts its typed retryable rejects (`overloaded` and
//! `deadline_exceeded`, retried with jittered exponential backoff so a
//! refusing server is not hammered in lockstep) and connect failures, so
//! the report is honest about what the server refused, not just what it
//! answered. Reports p50/p95/p99 answered-request latency, answered
//! req/s and the server's own trailing-window quantiles per level,
//! writing the machine-readable summary to `BENCH_serve.json` at the
//! repo root (alongside `BENCH_compute.json`).
//!
//! Usage: `servebench [--quick] [--seed <u64>] [--clients <N>]
//! [--addr <HOST:PORT>] [--model <NAMES>] [--out <PATH>]` — `--quick`
//! shrinks the request counts to CI-smoke size, `--clients` replaces the
//! default sweep with a single level (the CI overload smoke runs
//! `--clients 64`), `--out` redirects the JSON report. `--addr` drives
//! an **externally started** server (e.g. `cit-serve` under a
//! `CIT_FAULT_PLAN` chaos plan) instead of spawning one in-process;
//! clients then run in resilient mode — reconnecting after dropped
//! connections and reopening sessions the server reports as
//! `session_lost` — so injected faults show up in the disruption
//! counters, never as protocol errors. `--model` takes a comma-separated
//! slot-name list (empty entries mean model-oblivious opens); client *w*
//! opens its session against `names[w % len]`, so a multi-model server
//! sees a deterministic mixed workload (`--model default,alt,auto`
//! exercises named slots and the regime router together).

use cit_bench::out_dir;
use cit_core::{CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{Client, ErrorKind, Request, RetryPolicy, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One concurrency level's measurements: client-side quantiles plus the
/// server's own last-window view from its `stats` op.
struct Level {
    clients: usize,
    /// Requests answered with a decision (the latency population).
    answered: usize,
    /// Requests offered = answered + rejects (excludes failed connects).
    offered: usize,
    /// Typed retryable rejects (`overloaded`, `deadline_exceeded`) — the
    /// load-shedding signal under sustained offered load above capacity.
    rejects: usize,
    /// Clients that could not establish (or permanently lost) their
    /// connection.
    connect_errors: usize,
    /// Reconnects + session reopens survived in resilient (`--addr`)
    /// mode — how often injected faults actually disrupted a client.
    disruptions: usize,
    /// Anything that is neither an answer, a typed retryable reject nor
    /// a survived disruption: I/O failures mid-stream in non-resilient
    /// mode, malformed responses, unexpected error kinds. Must stay
    /// zero — everything else is a sanctioned failure mode.
    protocol_errors: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    req_per_s: f64,
    srv: cit_serve::WindowStats,
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

/// One client's tallies for a level.
#[derive(Default)]
struct ClientOutcome {
    latencies: Vec<f64>,
    rejects: usize,
    connect_error: bool,
    /// Connections re-dialled after the server dropped ours (resilient
    /// mode only).
    reconnects: usize,
    /// Sessions reopened after a typed `session_lost` (resilient mode
    /// only).
    reopens: usize,
    protocol_errors: usize,
    /// Detail of the first protocol error, for the failure report.
    first_error: Option<String>,
}

/// Most disruptions (reconnects + reopens) one client absorbs before
/// giving up — a server that keeps killing us is a failure, not chaos.
const MAX_DISRUPTIONS: usize = 16;

/// Opens (or re-opens) the client's session through backpressure.
/// Returns `false` on a terminal failure (already recorded in `out`).
#[allow(clippy::too_many_arguments)]
fn open_session(
    c: &mut Client,
    addr: std::net::SocketAddr,
    session: &str,
    model: &str,
    panel: &AssetPanel,
    out: &mut ClientOutcome,
    policy: &mut RetryPolicy,
    resilient: bool,
) -> bool {
    let history = panel.test_start();
    let mut attempt = 0u32;
    loop {
        // An empty model name means a model-oblivious open (the wire
        // bytes carry no "model" field at all — the byte-compat path).
        let req = if model.is_empty() {
            Request::Open {
                session: session.to_string(),
                prices: rows(panel, 0, history),
            }
        } else {
            Request::OpenAs {
                session: session.to_string(),
                prices: rows(panel, 0, history),
                model: model.to_string(),
            }
        };
        match c.call(&req) {
            Ok(r) if r.ok() => return true,
            Ok(r) if r.error_kind().is_some_and(ErrorKind::is_retryable) => {
                out.rejects += 1;
                std::thread::sleep(policy.backoff(attempt));
                attempt = (attempt + 1).min(8);
            }
            Ok(r) if resilient && r.error_kind() == Some(ErrorKind::SessionExists) => {
                // Leftover from an earlier run against this long-lived
                // server (live or spilled): clear it and try again.
                let _ = c.call(&Request::Close {
                    session: session.to_string(),
                });
            }
            Ok(r) => {
                out.protocol_errors += 1;
                out.first_error = Some(format!("open: {:?}", r.json().render()));
                return false;
            }
            Err(e) => {
                if resilient && out.reconnects + out.reopens < MAX_DISRUPTIONS {
                    out.reconnects += 1;
                    std::thread::sleep(policy.backoff(attempt));
                    attempt = (attempt + 1).min(8);
                    match Client::connect(addr) {
                        Ok(fresh) => *c = fresh,
                        Err(_) => {
                            out.connect_error = true;
                            return false;
                        }
                    }
                    continue;
                }
                out.protocol_errors += 1;
                out.first_error = Some(format!("open: io error {e}"));
                return false;
            }
        }
    }
}

/// Runs one client: opens a session (retrying through backpressure),
/// then issues `per_client` decides over one long-lived connection.
/// Retryable rejects are retried after a jittered exponential backoff
/// (decorrelated per client by seed) so a refusing server sees offered
/// load, not a synchronized 1 ms-period hammer. In resilient mode
/// (`--addr` against a chaos server) a dropped connection is re-dialled
/// and a `session_lost` session is reopened, bounded by
/// [`MAX_DISRUPTIONS`].
fn run_client(
    addr: std::net::SocketAddr,
    w: usize,
    model: &str,
    panel: &AssetPanel,
    per_client: usize,
    session_tag: &str,
    resilient: bool,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            out.connect_error = true;
            return out;
        }
    };
    let history = panel.test_start();
    let session = format!("bench{session_tag}{w}");
    // Backoff source only; retry loops below do their own accounting.
    let mut policy = RetryPolicy::new(1).seeded(0xbe7c4 ^ w as u64);
    if !open_session(
        &mut c,
        addr,
        &session,
        model,
        panel,
        &mut out,
        &mut policy,
        resilient,
    ) {
        return out;
    }
    out.latencies.reserve(per_client);
    let mut r = 0;
    let mut attempt = 0u32;
    while r < per_client {
        // Walk forward while panel days last, then keep deciding on the
        // final day (same compute cost).
        let t = history + r;
        let prices = if t < panel.num_days() {
            rows(panel, t, t + 1)
        } else {
            Vec::new()
        };
        let req = Request::Decide {
            session: session.clone(),
            prices,
        };
        let t0 = Instant::now();
        match c.call(&req) {
            Ok(reply) if reply.ok() => {
                out.latencies.push(t0.elapsed().as_secs_f64());
                r += 1;
                attempt = 0;
            }
            Ok(reply) if reply.error_kind().is_some_and(ErrorKind::is_retryable) => {
                // Typed load shedding (queue full or deadline blown):
                // back off with jitter, retry the same day so the
                // decision stream stays intact.
                out.rejects += 1;
                std::thread::sleep(policy.backoff(attempt));
                attempt = (attempt + 1).min(8);
            }
            Ok(reply)
                if resilient
                    && reply.error_kind() == Some(ErrorKind::SessionLost)
                    && out.reconnects + out.reopens < MAX_DISRUPTIONS =>
            {
                // The server quarantined our spilled session (injected
                // disk fault): its state is gone by contract, so reopen
                // and continue the run.
                out.reopens += 1;
                if !open_session(
                    &mut c,
                    addr,
                    &session,
                    model,
                    panel,
                    &mut out,
                    &mut policy,
                    resilient,
                ) {
                    return out;
                }
                attempt = 0;
            }
            Ok(reply) => {
                out.protocol_errors += 1;
                out.first_error = Some(format!("decide {r}: {:?}", reply.json().render()));
                return out;
            }
            Err(e) => {
                if resilient && out.reconnects + out.reopens < MAX_DISRUPTIONS {
                    // Injected socket fault killed the connection; the
                    // session itself survives server-side. Re-dial and
                    // resume (the in-flight decide may or may not have
                    // been applied — for a load harness either is fine).
                    out.reconnects += 1;
                    match Client::connect(addr) {
                        Ok(fresh) => c = fresh,
                        Err(_) => {
                            out.connect_error = true;
                            return out;
                        }
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    attempt = (attempt + 1).min(8);
                    continue;
                }
                out.protocol_errors += 1;
                out.first_error = Some(format!("decide {r}: io error {e}"));
                return out;
            }
        }
    }
    if resilient {
        // Leave the long-lived external server clean for the next run.
        let _ = c.call(&Request::Close { session });
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut clients_override: Option<usize> = None;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut external: Option<String> = None;
    let mut model_names: Vec<String> = vec![String::new()];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes a u64");
                i += 2;
            }
            "--clients" if i + 1 < args.len() => {
                clients_override = Some(args[i + 1].parse().expect("--clients takes a usize"));
                i += 2;
            }
            "--addr" if i + 1 < args.len() => {
                external = Some(args[i + 1].clone());
                i += 2;
            }
            "--model" if i + 1 < args.len() => {
                model_names = args[i + 1].split(',').map(str::to_string).collect();
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                panic!(
                    "unknown argument {other}; supported: --quick, --seed, --clients, --addr, --model, --out"
                )
            }
        }
    }
    let per_client = if quick { 25 } else { 250 };
    let levels: Vec<usize> = match clients_override {
        Some(n) => vec![n],
        None => vec![1, 4, 16, 64, 256, 1024],
    };

    let panel = SynthConfig {
        num_assets: 4,
        num_days: 260,
        test_start: 200,
        seed,
        ..Default::default()
    }
    .generate();
    let cfg = CitConfig::smoke(seed);

    // In-process mode trains a small checkpoint so the server exercises
    // the real load-from-disk path; `--addr` mode drives a server someone
    // else started (the chaos smoke starts it under a fault plan) and
    // must match its checkpoint's asset count and seed.
    let ckpt = if external.is_none() {
        eprintln!("servebench: training smoke checkpoint (seed {seed})...");
        let mut trader = CrossInsightTrader::new(&panel, cfg);
        trader.train(&panel);
        let ckpt_dir = out_dir().join("checkpoints");
        std::fs::create_dir_all(&ckpt_dir).expect("create results/checkpoints");
        let ckpt = ckpt_dir.join(format!("servebench_s{seed}.cit"));
        trader.save(&ckpt).expect("save checkpoint");
        Some(ckpt)
    } else {
        None
    };
    let resilient = external.is_some();

    let mut measured = Vec::new();
    for (level_idx, &clients) in levels.iter().enumerate() {
        // Unique session namespace per level (and per process, so reruns
        // against a long-lived external server never collide).
        let session_tag = format!("_{}_{level_idx}_", std::process::id());
        let (server, addr) = match &external {
            Some(a) => {
                use std::net::ToSocketAddrs;
                let addr = a
                    .to_socket_addrs()
                    .expect("--addr resolves")
                    .next()
                    .expect("--addr yields an address");
                (None, addr)
            }
            None => {
                let model = DecisionModel::from_checkpoint(
                    ckpt.as_ref().expect("checkpoint in in-process mode"),
                    cfg,
                    panel.num_assets(),
                )
                .expect("load checkpoint");
                let server = Server::start(model, ServeConfig::default()).expect("start server");
                let addr = server.addr();
                (Some(server), addr)
            }
        };
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|w| {
                let panel = panel.clone();
                let tag = session_tag.clone();
                let model = model_names[w % model_names.len()].clone();
                std::thread::spawn(move || {
                    run_client(addr, w, &model, &panel, per_client, &tag, resilient)
                })
            })
            .collect();
        let outcomes: Vec<ClientOutcome> = workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect();
        let wall = started.elapsed().as_secs_f64();
        // The server's own view over the wire, before shutting it down:
        // the trailing 10 s window covers (at least the tail of) the run.
        let srv = {
            let mut c =
                Client::connect_timeout(addr, Duration::from_secs(5)).expect("connect for stats");
            let mut policy = RetryPolicy::new(5).seeded(1).with_io_retries();
            let stats = c
                .call_retry(&Request::Stats, &mut policy)
                .expect("stats request")
                .stats()
                .expect("typed stats payload");
            stats
                .windows
                .into_iter()
                .find(|w| w.secs == 10)
                .expect("10s window digest")
        };
        if let Some(server) = server {
            server.shutdown();
        }
        let mut all: Vec<f64> = outcomes
            .iter()
            .flat_map(|o| o.latencies.iter().copied())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rejects: usize = outcomes.iter().map(|o| o.rejects).sum();
        let connect_errors = outcomes.iter().filter(|o| o.connect_error).count();
        let disruptions: usize = outcomes.iter().map(|o| o.reconnects + o.reopens).sum();
        let protocol_errors: usize = outcomes.iter().map(|o| o.protocol_errors).sum();
        for e in outcomes.iter().filter_map(|o| o.first_error.as_deref()) {
            eprintln!("servebench: protocol error at {clients} clients: {e}");
        }
        let level = Level {
            clients,
            answered: all.len(),
            offered: all.len() + rejects,
            rejects,
            connect_errors,
            disruptions,
            protocol_errors,
            p50_us: quantile_us(&all, 0.50),
            p95_us: quantile_us(&all, 0.95),
            p99_us: quantile_us(&all, 0.99),
            req_per_s: all.len() as f64 / wall,
            srv,
        };
        println!(
            "clients {:>4}: {:>6} answered / {:>6} offered  ({} rejects, {} connect errs, {} disruptions, {} protocol errs)",
            level.clients, level.answered, level.offered, level.rejects, level.connect_errors,
            level.disruptions, level.protocol_errors
        );
        println!(
            "              p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us  {:>8.1} req/s",
            level.p50_us, level.p95_us, level.p99_us, level.req_per_s
        );
        println!(
            "              server 10s window: p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us  {:>8.1} req/s",
            level.srv.p50_us, level.srv.p95_us, level.srv.p99_us, level.srv.req_per_s
        );
        measured.push(level);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"cit-serve\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"external\": {},", external.is_some());
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    let _ = writeln!(json, "  \"levels\": {{");
    for (i, l) in measured.iter().enumerate() {
        let comma = if i + 1 < measured.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"c{}\": {{ \"clients\": {}, \"requests\": {}, \"offered\": {}, \"rejects\": {}, \"connect_errors\": {}, \"disruptions\": {}, \"protocol_errors\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"req_per_s\": {:.1}, \"server\": {{ \"window_s\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"req_per_s\": {:.1} }} }}{comma}",
            l.clients, l.clients, l.answered, l.offered, l.rejects, l.connect_errors,
            l.disruptions, l.protocol_errors, l.p50_us, l.p95_us, l.p99_us, l.req_per_s,
            l.srv.secs, l.srv.requests, l.srv.p50_us, l.srv.p95_us, l.srv.p99_us, l.srv.req_per_s
        );
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    if let Some(ckpt) = &ckpt {
        std::fs::remove_file(ckpt).ok();
    }
    let total_protocol_errors: usize = measured.iter().map(|l| l.protocol_errors).sum();
    if total_protocol_errors > 0 {
        eprintln!("servebench: {total_protocol_errors} protocol errors — typed rejects and survived disruptions are the only acceptable failure modes");
        std::process::exit(1);
    }
}
