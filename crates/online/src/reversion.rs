//! Mean-reversion strategies: OLMAR, PAMR, CWMR and RMR.

use crate::util::{dot, l1_median, mean, simplex_projection, sq_norm};
use cit_market::{DecisionContext, Strategy};

/// On-line moving average reversion (Li & Hoi 2012).
///
/// Predicts next price relatives from a `w`-day moving average,
/// `x̃_{t+1,i} = MA_w(p_i) / p_{t,i}`, and takes a passive-aggressive step
/// toward portfolios with `b·x̃ ≥ ε`.
#[derive(Debug, Clone)]
pub struct Olmar {
    /// Reversion threshold ε (paper default 10).
    pub epsilon: f64,
    /// Moving-average window `w` (paper default 5).
    pub ma_window: usize,
    weights: Vec<f64>,
}

impl Olmar {
    /// Creates OLMAR with the given threshold and window.
    pub fn new(epsilon: f64, ma_window: usize) -> Self {
        assert!(ma_window >= 2, "OLMAR needs a window of at least 2");
        Olmar {
            epsilon,
            ma_window,
            weights: Vec::new(),
        }
    }
}

impl Default for Olmar {
    fn default() -> Self {
        Olmar::new(10.0, 5)
    }
}

impl Strategy for Olmar {
    fn name(&self) -> String {
        "OLMAR".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.weights.len() != m {
            self.reset(m);
        }
        if ctx.t + 1 >= self.ma_window {
            // Predicted relatives from the moving average.
            let xt: Vec<f64> = (0..m)
                .map(|i| {
                    let window = ctx.panel.close_window(ctx.t, i, self.ma_window);
                    let current = *window.last().expect("non-empty window");
                    mean(&window) / current
                })
                .collect();
            let xbar = mean(&xt);
            let denom = sq_norm(&xt.iter().map(|x| x - xbar).collect::<Vec<_>>());
            let lambda = if denom > 1e-12 {
                ((self.epsilon - dot(&self.weights, &xt)) / denom).max(0.0)
            } else {
                0.0
            };
            let target: Vec<f64> = self
                .weights
                .iter()
                .zip(&xt)
                .map(|(w, x)| w + lambda * (x - xbar))
                .collect();
            self.weights = simplex_projection(&target);
        }
        self.weights.clone()
    }
}

/// Passive-aggressive mean reversion (Li et al. 2012).
///
/// Suffers a loss when yesterday's winners were held
/// (`ℓ = max(0, b·x_t − ε)`) and moves *against* recent performance.
#[derive(Debug, Clone)]
pub struct Pamr {
    /// Sensitivity threshold ε (paper default 0.5).
    pub epsilon: f64,
    weights: Vec<f64>,
}

impl Pamr {
    /// Creates PAMR with threshold `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        Pamr {
            epsilon,
            weights: Vec::new(),
        }
    }
}

impl Default for Pamr {
    fn default() -> Self {
        Pamr::new(0.5)
    }
}

impl Strategy for Pamr {
    fn name(&self) -> String {
        "PAMR".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.weights.len() != m {
            self.reset(m);
        }
        if ctx.t >= 1 {
            let x = ctx.panel.price_relatives(ctx.t);
            let loss = (dot(&self.weights, &x) - self.epsilon).max(0.0);
            if loss > 0.0 {
                let xbar = mean(&x);
                let centered: Vec<f64> = x.iter().map(|xi| xi - xbar).collect();
                let denom = sq_norm(&centered);
                if denom > 1e-12 {
                    let tau = loss / denom;
                    let target: Vec<f64> = self
                        .weights
                        .iter()
                        .zip(&centered)
                        .map(|(w, c)| w - tau * c)
                        .collect();
                    self.weights = simplex_projection(&target);
                }
            }
        }
        self.weights.clone()
    }
}

/// Confidence-weighted mean reversion (Li et al. 2013), diagonal-covariance
/// variant.
///
/// Maintains a Gaussian belief `N(μ, diag(σ²))` over portfolios and, when
/// the reversion constraint is violated in expectation, shifts `μ` against
/// recent returns with a step scaled by per-asset confidence, then shrinks
/// the variances (growing confidence).
#[derive(Debug, Clone)]
pub struct Cwmr {
    /// Confidence parameter φ (≈ Φ⁻¹ of the confidence level).
    pub phi: f64,
    /// Reversion threshold ε.
    pub epsilon: f64,
    mu: Vec<f64>,
    sigma: Vec<f64>, // diagonal of Σ
}

impl Cwmr {
    /// Creates CWMR with confidence `phi` and threshold `epsilon`.
    pub fn new(phi: f64, epsilon: f64) -> Self {
        Cwmr {
            phi,
            epsilon,
            mu: Vec::new(),
            sigma: Vec::new(),
        }
    }
}

impl Default for Cwmr {
    fn default() -> Self {
        Cwmr::new(2.0, 0.5)
    }
}

impl Strategy for Cwmr {
    fn name(&self) -> String {
        "CWMR".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.mu = vec![1.0 / m as f64; m];
        self.sigma = vec![1.0 / (m * m) as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.mu.len() != m {
            self.reset(m);
        }
        if ctx.t >= 1 {
            let x = ctx.panel.price_relatives(ctx.t);
            let mean_ret = dot(&self.mu, &x);
            // Variance of the portfolio return under the diagonal belief.
            let var: f64 = self.sigma.iter().zip(&x).map(|(s, xi)| s * xi * xi).sum();
            // Constraint: Pr[b·x ≤ ε] ≥ confidence ⇔ mean + φ·√var ≤ ε.
            let violation = mean_ret + self.phi * var.sqrt() - self.epsilon;
            if violation > 0.0 {
                let denom = (var + 1e-12).sqrt() * self.phi + 1e-12;
                let lambda = (violation / denom).min(10.0);
                let xbar = mean(&x);
                // Mean update scaled by per-asset confidence (σ²ᵢ).
                let target: Vec<f64> = self
                    .mu
                    .iter()
                    .zip(&x)
                    .zip(&self.sigma)
                    .map(|((mu, xi), s)| mu - lambda * s * (xi - xbar) / (var + 1e-12).sqrt())
                    .collect();
                self.mu = simplex_projection(&target);
                // Confidence grows where the constraint was informative.
                for (s, xi) in self.sigma.iter_mut().zip(&x) {
                    *s = (*s / (1.0 + lambda * self.phi * xi * xi * *s)).max(1e-10);
                }
            }
        }
        self.mu.clone()
    }
}

/// Robust median reversion (Huang et al. 2013): OLMAR with the moving
/// average replaced by the outlier-robust L1-median of the price window.
#[derive(Debug, Clone)]
pub struct Rmr {
    /// Reversion threshold ε.
    pub epsilon: f64,
    /// Price window length.
    pub window: usize,
    /// Weiszfeld iterations for the L1-median.
    pub median_iters: usize,
    weights: Vec<f64>,
}

impl Rmr {
    /// Creates RMR with the given threshold and window.
    pub fn new(epsilon: f64, window: usize) -> Self {
        assert!(window >= 2, "RMR needs a window of at least 2");
        Rmr {
            epsilon,
            window,
            median_iters: 40,
            weights: Vec::new(),
        }
    }
}

impl Default for Rmr {
    fn default() -> Self {
        Rmr::new(10.0, 5)
    }
}

impl Strategy for Rmr {
    fn name(&self) -> String {
        "RMR".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.weights.len() != m {
            self.reset(m);
        }
        if ctx.t + 1 >= self.window {
            // L1-median of the joint price vectors in the window.
            let points: Vec<Vec<f64>> = (ctx.t + 1 - self.window..=ctx.t)
                .map(|day| ctx.panel.closes(day))
                .collect();
            let med = l1_median(&points, self.median_iters);
            let current = ctx.panel.closes(ctx.t);
            let xt: Vec<f64> = med
                .iter()
                .zip(&current)
                .map(|(md, c)| md / c.max(1e-12))
                .collect();
            let xbar = mean(&xt);
            let centered: Vec<f64> = xt.iter().map(|x| x - xbar).collect();
            let denom = sq_norm(&centered);
            let lambda = if denom > 1e-12 {
                ((self.epsilon - dot(&self.weights, &xt)) / denom).max(0.0)
            } else {
                0.0
            };
            let target: Vec<f64> = self
                .weights
                .iter()
                .zip(&centered)
                .map(|(w, c)| w + lambda * c)
                .collect();
            self.weights = simplex_projection(&target);
        }
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_backtest, AssetPanel, EnvConfig, SynthConfig};

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 150,
            test_start: 100,
            ..Default::default()
        }
        .generate()
    }

    fn assert_simplex_run(strategy: &mut dyn Strategy) {
        let p = panel();
        let res = run_backtest(&p, EnvConfig::default(), 40, 90, strategy);
        for w in &res.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{w:?}");
            assert!(w.iter().all(|&x| x >= -1e-9), "{w:?}");
        }
    }

    #[test]
    fn olmar_simplex() {
        assert_simplex_run(&mut Olmar::default());
    }

    #[test]
    fn pamr_simplex() {
        assert_simplex_run(&mut Pamr::default());
    }

    #[test]
    fn cwmr_simplex() {
        assert_simplex_run(&mut Cwmr::default());
    }

    #[test]
    fn rmr_simplex() {
        assert_simplex_run(&mut Rmr::default());
    }

    /// A strongly mean-reverting two-asset market: prices oscillate.
    fn oscillating_panel() -> AssetPanel {
        let days = 100;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..2 {
                let phase = if i == 0 { 0.0 } else { std::f64::consts::PI };
                // Frequency near π ⇒ strongly negative lag-1 autocorrelation,
                // i.e. genuine one-day mean reversion for PAMR to harvest.
                let c = 100.0 * (1.0 + 0.05 * ((t as f64) * 2.8 + phase).sin());
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        AssetPanel::new("osc", days, 2, data, 80)
    }

    #[test]
    fn pamr_profits_from_mean_reversion() {
        let p = oscillating_panel();
        let cfg = EnvConfig {
            window: 5,
            transaction_cost: 0.0,
        };
        let pamr = run_backtest(&p, cfg, 10, 90, &mut Pamr::default());
        let crp = run_backtest(&p, cfg, 10, 90, &mut crate::benchmark::Crp);
        assert!(
            pamr.wealth.last().unwrap() > crp.wealth.last().unwrap(),
            "PAMR should beat CRP on an oscillating market: {} vs {}",
            pamr.wealth.last().unwrap(),
            crp.wealth.last().unwrap()
        );
    }

    #[test]
    fn olmar_bets_on_reversion() {
        // After a sharp one-day drop in asset 0 (others flat), OLMAR's MA
        // prediction for asset 0 exceeds 1 → overweight it.
        let days = 30;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..2 {
                let c = if i == 0 && t == 19 { 70.0 } else { 100.0 };
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = AssetPanel::new("drop", days, 2, data, 25);
        // ε = 10 (the paper's default) keeps the constraint active, so the
        // update always pushes toward the higher predicted relative.
        let mut olmar = Olmar::new(10.0, 5);
        // Decide at t = 19 (the crash day) for day 20.
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 19,
            prev_weights: &[0.5, 0.5],
            window: 5,
        };
        olmar.reset(2);
        let w = olmar.decide(&ctx);
        assert!(
            w[0] > 0.5,
            "OLMAR should overweight the crashed asset, got {w:?}"
        );
    }

    #[test]
    fn rmr_resists_price_outlier() {
        // One wild outlier day: RMR's median prediction moves far less than
        // OLMAR's mean prediction, so its portfolio stays closer to uniform.
        let days = 30;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..2 {
                let c = if i == 0 && t == 18 { 500.0 } else { 100.0 };
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = AssetPanel::new("outlier", days, 2, data, 25);
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 20,
            prev_weights: &[0.5, 0.5],
            window: 5,
        };
        let mut rmr = Rmr::new(1.05, 5);
        rmr.reset(2);
        let w_rmr = rmr.decide(&ctx);
        let mut olmar = Olmar::new(1.05, 5);
        olmar.reset(2);
        let w_olmar = olmar.decide(&ctx);
        let dev = |w: &[f64]| (w[0] - 0.5).abs();
        assert!(
            dev(&w_rmr) <= dev(&w_olmar) + 1e-9,
            "RMR {w_rmr:?} should be at most as tilted as OLMAR {w_olmar:?}"
        );
    }

    #[test]
    fn cwmr_confidence_shrinks() {
        let p = panel();
        let mut cwmr = Cwmr::default();
        cwmr.reset(4);
        let s0: f64 = cwmr.sigma.iter().sum();
        let _ = run_backtest(&p, EnvConfig::default(), 40, 90, &mut cwmr);
        let s1: f64 = cwmr.sigma.iter().sum();
        assert!(
            s1 <= s0,
            "CWMR variance should shrink over time: {s0} -> {s1}"
        );
    }
}
