//! Follow-the-leader style methods: online Newton step (ONS) and Cover's
//! universal portfolios (UP, Monte-Carlo approximation).

use crate::util::{dot, simplex_projection};
use cit_market::{DecisionContext, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Online Newton step (Agarwal et al. 2006).
///
/// Maintains `A_t = Σ ∇ℓ ∇ℓᵀ + I` and takes the Newton-style step
/// `p ← Π( p + (1/β) A_t⁻¹ ∇log(p·x) )`, mixed with the uniform portfolio
/// by `δ`. The generalised (A-norm) projection of the original paper is
/// replaced by an exact Euclidean simplex projection, which preserves the
/// algorithm's qualitative behaviour.
#[derive(Debug, Clone)]
pub struct Ons {
    /// Inverse step-size β.
    pub beta: f64,
    /// Uniform mixing coefficient δ.
    pub delta: f64,
    weights: Vec<f64>,
    a: Vec<f64>, // m×m matrix, row-major
}

impl Ons {
    /// Creates ONS with the standard β = 2, δ = 1/8.
    pub fn new(beta: f64, delta: f64) -> Self {
        Ons {
            beta,
            delta,
            weights: Vec::new(),
            a: Vec::new(),
        }
    }
}

impl Default for Ons {
    fn default() -> Self {
        Ons::new(2.0, 0.125)
    }
}

impl Strategy for Ons {
    fn name(&self) -> String {
        "ONS".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
        self.a = vec![0.0; m * m];
        for i in 0..m {
            self.a[i * m + i] = 1.0;
        }
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.weights.len() != m {
            self.reset(m);
        }
        if ctx.t >= 1 {
            let x = ctx.panel.price_relatives(ctx.t);
            let px = dot(&self.weights, &x).max(1e-12);
            // Gradient of log wealth wrt p.
            let grad: Vec<f64> = x.iter().map(|xi| xi / px).collect();
            // Rank-one update of A.
            for i in 0..m {
                for j in 0..m {
                    self.a[i * m + j] += grad[i] * grad[j];
                }
            }
            // Solve A·d = grad by Gauss-Seidel-lite (A is SPD and well
            // conditioned thanks to the +I start); a handful of conjugate
            // gradient iterations is plenty at these sizes.
            let d = solve_spd(&self.a, &grad, m);
            let mut target: Vec<f64> = self
                .weights
                .iter()
                .zip(&d)
                .map(|(w, di)| w + di / self.beta)
                .collect();
            target = simplex_projection(&target);
            // Mix with uniform for regret guarantees.
            for t in target.iter_mut() {
                *t = (1.0 - self.delta) * *t + self.delta / m as f64;
            }
            self.weights = target;
        }
        self.weights.clone()
    }
}

/// Conjugate-gradient solve of `A x = b` for a symmetric positive-definite
/// `A` (row-major `m×m`).
fn solve_spd(a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
    let matvec = |v: &[f64]| -> Vec<f64> {
        (0..m)
            .map(|i| (0..m).map(|j| a[i * m + j] * v[j]).sum())
            .collect()
    };
    let mut x = vec![0.0f64; m];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    for _ in 0..(2 * m).max(16) {
        if rs < 1e-18 {
            break;
        }
        let ap = matvec(&p);
        let alpha = rs / dot(&p, &ap).max(1e-18);
        for i in 0..m {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for i in 0..m {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
    }
    x
}

/// Cover's universal portfolio, approximated by Monte-Carlo sampling of
/// CRP managers from a Dirichlet(1,…,1) prior: the played portfolio is the
/// wealth-weighted average of the samples.
#[derive(Debug, Clone)]
pub struct UniversalPortfolio {
    /// Number of sampled CRP managers.
    pub num_samples: usize,
    seed: u64,
    samples: Vec<Vec<f64>>,
    wealth: Vec<f64>,
}

impl UniversalPortfolio {
    /// Creates UP with `num_samples` sampled managers.
    pub fn new(num_samples: usize, seed: u64) -> Self {
        UniversalPortfolio {
            num_samples,
            seed,
            samples: Vec::new(),
            wealth: Vec::new(),
        }
    }
}

impl Default for UniversalPortfolio {
    fn default() -> Self {
        UniversalPortfolio::new(256, 7)
    }
}

impl Strategy for UniversalPortfolio {
    fn name(&self) -> String {
        "UP".to_string()
    }

    fn reset(&mut self, m: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.samples = (0..self.num_samples)
            .map(|_| {
                // Dirichlet(1) == normalised exponentials.
                let e: Vec<f64> = (0..m)
                    .map(|_| -rng.random::<f64>().max(1e-12).ln())
                    .collect();
                let s: f64 = e.iter().sum();
                e.into_iter().map(|v| v / s).collect()
            })
            .collect();
        self.wealth = vec![1.0; self.num_samples];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.samples.is_empty() || self.samples[0].len() != m {
            self.reset(m);
        }
        if ctx.t >= 1 {
            let x = ctx.panel.price_relatives(ctx.t);
            for (w, b) in self.wealth.iter_mut().zip(&self.samples) {
                *w *= dot(b, &x).max(1e-12);
            }
        }
        let total: f64 = self.wealth.iter().sum();
        let mut target = vec![0.0f64; m];
        for (w, b) in self.wealth.iter().zip(&self.samples) {
            for i in 0..m {
                target[i] += w / total * b[i];
            }
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_backtest, EnvConfig, SynthConfig};

    fn panel() -> cit_market::AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 150,
            test_start: 100,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn solve_spd_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_spd(&a, &[3.0, -2.0], 2);
        assert!((x[0] - 3.0).abs() < 1e-9 && (x[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_spd_general() {
        // A = [[2,1],[1,3]], b = [1, 2] ⇒ x = [0.2, 0.6]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let x = solve_spd(&a, &[1.0, 2.0], 2);
        assert!((x[0] - 0.2).abs() < 1e-8 && (x[1] - 0.6).abs() < 1e-8);
    }

    #[test]
    fn ons_outputs_valid_weights() {
        let p = panel();
        let res = run_backtest(&p, EnvConfig::default(), 40, 90, &mut Ons::default());
        for w in &res.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn ons_mixes_with_uniform() {
        // δ-mixing bounds every weight below by δ/m.
        let p = panel();
        let mut ons = Ons::default();
        let res = run_backtest(&p, EnvConfig::default(), 40, 90, &mut ons);
        let floor = 0.125 / 4.0 - 1e-9;
        for w in res.weights.iter().skip(1) {
            assert!(
                w.iter().all(|&x| x >= floor),
                "weight below δ/m floor: {w:?}"
            );
        }
    }

    #[test]
    fn up_converges_to_best_manager_on_rigged_market() {
        // Asset 0 trends strongly upward: UP's wealth-weighting must tilt
        // the played portfolio toward managers heavy in asset 0.
        let mut data = Vec::new();
        let days = 120;
        for t in 0..days {
            for i in 0..3 {
                let growth: f64 = if i == 0 { 1.03 } else { 0.99 };
                let c = 100.0 * growth.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = cit_market::AssetPanel::new("rigged", days, 3, data, 100);
        let mut up = UniversalPortfolio::new(128, 3);
        let res = run_backtest(
            &p,
            EnvConfig {
                window: 5,
                transaction_cost: 0.0,
            },
            10,
            110,
            &mut up,
        );
        let w = res.weights.last().expect("weights");
        // Cover's UP concentrates slowly; require asset 0 to dominate and
        // carry clearly more than the uniform share.
        let max_idx = (0..3)
            .max_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap())
            .unwrap();
        assert_eq!(max_idx, 0, "UP should favour the winning asset, got {w:?}");
        assert!(w[0] > 0.45, "UP tilt too weak, got {w:?}");
    }

    #[test]
    fn up_deterministic_given_seed() {
        let p = panel();
        let r1 = run_backtest(
            &p,
            EnvConfig::default(),
            40,
            70,
            &mut UniversalPortfolio::new(64, 9),
        );
        let r2 = run_backtest(
            &p,
            EnvConfig::default(),
            40,
            70,
            &mut UniversalPortfolio::new(64, 9),
        );
        assert_eq!(r1.wealth, r2.wealth);
    }
}
