//! Anticor (Borodin, El-Yaniv & Gogan 2003): statistical arbitrage on
//! lagged cross-correlation and negative autocorrelation.

use crate::util::mean;
use cit_market::{DecisionContext, Strategy};

/// The Anticor weight-transfer strategy.
///
/// Two consecutive windows of log price relatives are compared; wealth is
/// moved from asset `i` to asset `j` when `i` outperformed `j` in the most
/// recent window *and* the lagged cross-correlation `corr(LX1_i, LX2_j)` is
/// positive, reinforced by negative autocorrelations.
#[derive(Debug, Clone)]
pub struct Anticor {
    /// Window length `w`.
    pub window: usize,
    weights: Vec<f64>,
}

impl Anticor {
    /// Creates Anticor with window length `window`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "Anticor needs window >= 2");
        Anticor {
            window,
            weights: Vec::new(),
        }
    }
}

impl Default for Anticor {
    fn default() -> Self {
        Anticor::new(5)
    }
}

impl Strategy for Anticor {
    fn name(&self) -> String {
        "Anticor".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if self.weights.len() != m {
            self.reset(m);
        }
        let w = self.window;
        if ctx.t < 2 * w {
            return self.weights.clone();
        }

        // Log relatives for the two windows: LX1 covers [t-2w+1, t-w],
        // LX2 covers [t-w+1, t].
        let log_rel = |day: usize, i: usize| -> f64 {
            (ctx.panel.close(day, i) / ctx.panel.close(day - 1, i)).ln()
        };
        let lx1: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (ctx.t - 2 * w + 1..=ctx.t - w)
                    .map(|d| log_rel(d, i))
                    .collect()
            })
            .collect();
        let lx2: Vec<Vec<f64>> = (0..m)
            .map(|i| (ctx.t - w + 1..=ctx.t).map(|d| log_rel(d, i)).collect())
            .collect();

        let mu1: Vec<f64> = lx1.iter().map(|c| mean(c)).collect();
        let mu2: Vec<f64> = lx2.iter().map(|c| mean(c)).collect();
        let sd = |col: &[f64], mu: f64| {
            (col.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / (w as f64 - 1.0)).sqrt()
        };
        let s1: Vec<f64> = lx1.iter().zip(&mu1).map(|(c, &mu)| sd(c, mu)).collect();
        let s2: Vec<f64> = lx2.iter().zip(&mu2).map(|(c, &mu)| sd(c, mu)).collect();

        // Lagged cross-correlation matrix.
        let mut mcor = vec![0.0f64; m * m];
        for i in 0..m {
            for j in 0..m {
                if s1[i] > 1e-12 && s2[j] > 1e-12 {
                    let cov: f64 = lx1[i]
                        .iter()
                        .zip(&lx2[j])
                        .map(|(a, b)| (a - mu1[i]) * (b - mu2[j]))
                        .sum::<f64>()
                        / (w as f64 - 1.0);
                    mcor[i * m + j] = cov / (s1[i] * s2[j]);
                }
            }
        }

        // Claims: move wealth i→j when i beat j recently and they are
        // positively cross-correlated.
        let mut claims = vec![0.0f64; m * m];
        for i in 0..m {
            for j in 0..m {
                if i != j && mu2[i] >= mu2[j] && mcor[i * m + j] > 0.0 {
                    let mut claim = mcor[i * m + j];
                    claim += (-mcor[i * m + i]).max(0.0);
                    claim += (-mcor[j * m + j]).max(0.0);
                    claims[i * m + j] = claim;
                }
            }
        }

        // Execute transfers proportionally to claims.
        let mut new_w = self.weights.clone();
        for i in 0..m {
            let total_claim: f64 = (0..m).map(|j| claims[i * m + j]).sum();
            if total_claim > 1e-12 {
                for j in 0..m {
                    let transfer = self.weights[i] * claims[i * m + j] / total_claim;
                    new_w[i] -= transfer;
                    new_w[j] += transfer;
                }
            }
        }
        // Numerical cleanup.
        let sum: f64 = new_w.iter().sum();
        if sum > 0.0 {
            new_w.iter_mut().for_each(|x| *x = (*x / sum).max(0.0));
            let s2: f64 = new_w.iter().sum();
            new_w.iter_mut().for_each(|x| *x /= s2);
        }
        self.weights = new_w;
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_backtest, AssetPanel, EnvConfig, SynthConfig};

    #[test]
    fn anticor_outputs_simplex() {
        let p = SynthConfig {
            num_assets: 5,
            num_days: 150,
            test_start: 100,
            ..Default::default()
        }
        .generate();
        let res = run_backtest(&p, EnvConfig::default(), 40, 100, &mut Anticor::default());
        for w in &res.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn no_trading_before_two_windows() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 60,
            test_start: 40,
            ..Default::default()
        }
        .generate();
        let mut a = Anticor::new(5);
        a.reset(3);
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 8,
            prev_weights: &[0.4, 0.3, 0.3],
            window: 5,
        };
        let w = a.decide(&ctx);
        assert!(
            w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12),
            "too early to trade: {w:?}"
        );
    }

    #[test]
    fn transfers_conserve_wealth() {
        // Alternating leaders market to force transfers.
        let days = 60;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let cycle = ((t / 5 + i) % 3) as f64;
                let c = 100.0 * (1.0 + 0.03 * cycle);
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = AssetPanel::new("cyc", days, 3, data, 50);
        let res = run_backtest(
            &p,
            EnvConfig {
                window: 5,
                transaction_cost: 0.0,
            },
            20,
            50,
            &mut Anticor::default(),
        );
        for w in &res.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
