//! # cit-online
//!
//! Online portfolio-selection baselines from the paper's Table III:
//! OLMAR, CRP, ONS, UP and EG, plus the related methods its Related-Work
//! section surveys (Anticor, PAMR, CWMR, RMR) and buy-and-hold. All
//! implement [`cit_market::Strategy`] and slot straight into the
//! backtester.
//!
//! ```
//! use cit_market::{run_test_period, EnvConfig, MarketPreset};
//! use cit_online::Olmar;
//!
//! let panel = MarketPreset::China.scaled(8, 24).generate();
//! let result = run_test_period(&panel, EnvConfig::default(), &mut Olmar::default());
//! println!("OLMAR AR = {:.3}", result.metrics.ar);
//! ```

#![deny(missing_docs)]

mod anticor;
mod benchmark;
mod newton;
mod pattern;
mod reversion;
pub mod util;

pub use anticor::Anticor;
pub use benchmark::{BuyAndHold, Crp, Eg};
pub use newton::{Ons, UniversalPortfolio};
pub use pattern::{Bcrp, Corn};
pub use reversion::{Cwmr, Olmar, Pamr, Rmr};

use cit_market::Strategy;

/// The five online baselines reported in the paper's Table III, in paper
/// order, with the paper's default hyper-parameters.
pub fn table3_baselines() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(Olmar::default()),
        Box::new(Crp),
        Box::new(Ons::default()),
        Box::new(UniversalPortfolio::default()),
        Box::new(Eg::default()),
    ]
}

/// Every online strategy in this crate (the Table III five plus the
/// related-work methods), for extended comparisons.
pub fn all_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(Olmar::default()),
        Box::new(Crp),
        Box::new(Ons::default()),
        Box::new(UniversalPortfolio::default()),
        Box::new(Eg::default()),
        Box::new(Anticor::default()),
        Box::new(Pamr::default()),
        Box::new(Cwmr::default()),
        Box::new(Rmr::default()),
        Box::new(Corn::default()),
        Box::new(Bcrp::default()),
        Box::new(BuyAndHold::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_cover_expected_names() {
        let names: Vec<String> = table3_baselines().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["OLMAR", "CRP", "ONS", "UP", "EG"]);
        assert_eq!(all_strategies().len(), 12);
    }
}
