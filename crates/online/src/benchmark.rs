//! Benchmark-type strategies: constant rebalanced portfolios (CRP),
//! buy-and-hold (BAH) and the exponential-gradient update (EG).

use crate::util::dot;
use cit_market::{DecisionContext, Strategy};

/// Uniform constant rebalanced portfolio (Cover & Gluss): rebalance to
/// `1/m` every day.
#[derive(Debug, Default, Clone)]
pub struct Crp;

impl Strategy for Crp {
    fn name(&self) -> String {
        "CRP".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        vec![1.0 / m as f64; m]
    }
}

/// Buy and hold: invest uniformly on day one, then let weights drift.
#[derive(Debug, Default, Clone)]
pub struct BuyAndHold {
    started: bool,
}

impl Strategy for BuyAndHold {
    fn name(&self) -> String {
        "BAH".to_string()
    }

    fn reset(&mut self, _m: usize) {
        self.started = false;
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        if !self.started {
            self.started = true;
            let m = ctx.panel.num_assets();
            return vec![1.0 / m as f64; m];
        }
        ctx.prev_weights.to_vec()
    }
}

/// Exponential gradient (Helmbold et al. 1998):
/// `w_{t+1,i} ∝ w_{t,i} · exp(η · x_{t,i} / (w_t · x_t))`.
#[derive(Debug, Clone)]
pub struct Eg {
    /// Learning rate η (paper default 0.05).
    pub eta: f64,
    weights: Vec<f64>,
}

impl Eg {
    /// Creates EG with learning rate `eta`.
    pub fn new(eta: f64) -> Self {
        Eg {
            eta,
            weights: Vec::new(),
        }
    }
}

impl Default for Eg {
    fn default() -> Self {
        Eg::new(0.05)
    }
}

impl Strategy for Eg {
    fn name(&self) -> String {
        "EG".to_string()
    }

    fn reset(&mut self, m: usize) {
        self.weights = vec![1.0 / m as f64; m];
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        if self.weights.len() != ctx.panel.num_assets() {
            self.reset(ctx.panel.num_assets());
        }
        if ctx.t >= 1 {
            let x = ctx.panel.price_relatives(ctx.t);
            let denom = dot(&self.weights, &x).max(1e-12);
            for (w, xi) in self.weights.iter_mut().zip(&x) {
                *w *= (self.eta * xi / denom).exp();
            }
            let sum: f64 = self.weights.iter().sum();
            self.weights.iter_mut().for_each(|w| *w /= sum);
        }
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_backtest, EnvConfig, SynthConfig};

    fn panel() -> cit_market::AssetPanel {
        SynthConfig {
            num_assets: 4,
            num_days: 150,
            test_start: 100,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn crp_always_uniform() {
        let p = panel();
        let res = run_backtest(&p, EnvConfig::default(), 40, 80, &mut Crp);
        for w in &res.weights {
            assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-12));
        }
    }

    #[test]
    fn bah_weights_drift_with_prices() {
        let p = panel();
        let res = run_backtest(
            &p,
            EnvConfig {
                window: 10,
                transaction_cost: 0.0,
            },
            40,
            80,
            &mut BuyAndHold::default(),
        );
        // After the first day the target should follow drifted weights, so
        // turnover (and hence deviation from uniform) appears.
        let last = res.weights.last().expect("weights recorded");
        let drifted = last.iter().any(|&w| (w - 0.25).abs() > 1e-6);
        assert!(drifted, "BAH weights should drift away from uniform");
    }

    #[test]
    fn bah_matches_market_index_without_costs() {
        let p = panel();
        let res = run_backtest(
            &p,
            EnvConfig {
                window: 10,
                transaction_cost: 0.0,
            },
            40,
            90,
            &mut BuyAndHold::default(),
        );
        let idx = cit_market::market_result(&p, 40, 90);
        for (a, b) in res.wealth.iter().zip(&idx.wealth) {
            assert!(
                (a - b).abs() < 1e-9,
                "BAH must replicate the index: {a} vs {b}"
            );
        }
    }

    #[test]
    fn eg_tilts_toward_recent_winner() {
        let p = panel();
        let mut eg = Eg::new(0.5); // large η to make the tilt visible
        let res = run_backtest(
            &p,
            EnvConfig {
                window: 10,
                transaction_cost: 0.0,
            },
            40,
            45,
            &mut eg,
        );
        // The first decision (t = 40) applies exactly one multiplicative
        // update from uniform weights, so its argmax must equal the best
        // asset by the price relatives of day 40. (Later decisions mix
        // several updates, so their argmax depends on the whole history.)
        let x = p.price_relatives(40);
        let best = (0..4)
            .max_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap())
            .unwrap();
        let w = &res.weights[0]; // decision taken at t = 40
        let maxw = (0..4)
            .max_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap())
            .unwrap();
        assert_eq!(best, maxw, "EG should overweight the best recent asset");
    }

    #[test]
    fn eg_weights_stay_simplex() {
        let p = panel();
        let res = run_backtest(&p, EnvConfig::default(), 40, 90, &mut Eg::default());
        for w in &res.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }
}
