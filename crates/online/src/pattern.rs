//! Pattern-matching and hindsight strategies: CORN (correlation-driven
//! nonparametric learning) and BCRP (best constant rebalanced portfolio in
//! hindsight — an upper-bound benchmark, not a causal strategy).

use crate::util::{dot, simplex_projection};
use cit_market::{DecisionContext, Strategy};

/// CORN (Li, Hoi & Gopalkrishnan 2011): find past windows whose market
/// behaviour correlates with the current window above a threshold, then
/// choose the portfolio that would have maximised log-wealth on the days
/// that followed those similar windows (approximated by projected gradient
/// ascent on the simplex).
#[derive(Debug, Clone)]
pub struct Corn {
    /// Window length used for similarity matching.
    pub window: usize,
    /// Correlation threshold ρ.
    pub rho: f64,
    /// Gradient-ascent iterations for the inner log-optimal problem.
    pub opt_iters: usize,
}

impl Corn {
    /// Creates CORN with window `window` and correlation threshold `rho`.
    pub fn new(window: usize, rho: f64) -> Self {
        assert!(window >= 2, "CORN needs window >= 2");
        Corn {
            window,
            rho,
            opt_iters: 60,
        }
    }

    /// Market-vector for a window: concatenated price relatives of all
    /// assets over `window` days ending at `t`.
    fn market_window(ctx: &DecisionContext<'_>, t: usize, window: usize) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        let mut out = Vec::with_capacity(window * m);
        for day in t + 1 - window..=t {
            out.extend(ctx.panel.price_relatives(day));
        }
        out
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in a.iter().zip(b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        if va < 1e-18 || vb < 1e-18 {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    /// Log-optimal portfolio over the matched next-day relatives via
    /// Cover's multiplicative fixed-point iteration
    /// `b_i ← b_i · E[x_i / (b·x)]`, which preserves the simplex and
    /// converges to the growth-optimal portfolio.
    fn log_optimal(&self, samples: &[Vec<f64>], m: usize) -> Vec<f64> {
        log_optimal_portfolio(samples, m, self.opt_iters)
    }
}

/// Cover's multiplicative update toward the growth-optimal portfolio.
fn log_optimal_portfolio(samples: &[Vec<f64>], m: usize, iters: usize) -> Vec<f64> {
    let mut b = vec![1.0 / m as f64; m];
    for _ in 0..iters {
        let mut factor = vec![0.0f64; m];
        for x in samples {
            let bx = dot(&b, x).max(1e-9);
            for (f, xi) in factor.iter_mut().zip(x) {
                *f += xi / bx / samples.len() as f64;
            }
        }
        for (bi, f) in b.iter_mut().zip(&factor) {
            *bi *= f;
        }
        let sum: f64 = b.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / m as f64; m];
        }
        b.iter_mut().for_each(|x| *x /= sum);
    }
    simplex_projection(&b)
}

impl Default for Corn {
    fn default() -> Self {
        Corn::new(5, 0.2)
    }
}

impl Strategy for Corn {
    fn name(&self) -> String {
        "CORN".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        let w = self.window;
        // Need the current window plus at least one historical candidate.
        if ctx.t < 2 * w + 1 {
            return vec![1.0 / m as f64; m];
        }
        let current = Self::market_window(ctx, ctx.t, w);
        let mut matches: Vec<Vec<f64>> = Vec::new();
        for past_end in w..ctx.t - w {
            let hist = Self::market_window(ctx, past_end, w);
            if Self::correlation(&current, &hist) >= self.rho {
                matches.push(ctx.panel.price_relatives(past_end + 1));
            }
        }
        if matches.is_empty() {
            return vec![1.0 / m as f64; m];
        }
        self.log_optimal(&matches, m)
    }
}

/// Best constant rebalanced portfolio *in hindsight* over all data up to
/// `t` — the benchmark UP is proven to track asymptotically. Causal in the
/// sense that it only looks backwards, but primarily useful as a reference
/// row.
#[derive(Debug, Clone)]
pub struct Bcrp {
    /// Gradient-ascent iterations.
    pub opt_iters: usize,
}

impl Default for Bcrp {
    fn default() -> Self {
        Bcrp { opt_iters: 400 }
    }
}

impl Strategy for Bcrp {
    fn name(&self) -> String {
        "BCRP".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        if ctx.t < 2 {
            return vec![1.0 / m as f64; m];
        }
        let samples: Vec<Vec<f64>> = (1..=ctx.t)
            .map(|day| ctx.panel.price_relatives(day))
            .collect();
        log_optimal_portfolio(&samples, m, self.opt_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::{run_backtest, AssetPanel, EnvConfig, SynthConfig};

    fn rigged_panel() -> AssetPanel {
        let days = 120;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.02 } else { 0.995 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        AssetPanel::new("rigged", days, 3, data, 100)
    }

    #[test]
    fn bcrp_finds_the_hindsight_winner() {
        let p = rigged_panel();
        let mut bcrp = Bcrp::default();
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 99,
            prev_weights: &[1.0 / 3.0; 3],
            window: 5,
        };
        let b = bcrp.decide(&ctx);
        assert!(
            b[0] > 0.9,
            "BCRP must concentrate on the dominant asset: {b:?}"
        );
    }

    #[test]
    fn corn_defaults_to_uniform_without_matches() {
        let p = rigged_panel();
        let mut corn = Corn::new(5, 1.1); // impossible threshold
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 60,
            prev_weights: &[1.0 / 3.0; 3],
            window: 5,
        };
        let w = corn.decide(&ctx);
        assert!(w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn corn_exploits_persistent_pattern() {
        // On a strongly monotone market every past window correlates with
        // the current one, so CORN's log-optimal step should pick asset 0.
        let p = rigged_panel();
        let mut corn = Corn::new(5, 0.0);
        let ctx = cit_market::DecisionContext {
            panel: &p,
            t: 80,
            prev_weights: &[1.0 / 3.0; 3],
            window: 5,
        };
        let w = corn.decide(&ctx);
        assert!(
            w[0] > 0.5,
            "CORN should favour the persistent winner: {w:?}"
        );
    }

    #[test]
    fn both_stay_on_simplex_in_backtests() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 150,
            test_start: 120,
            ..Default::default()
        }
        .generate();
        for strat in [
            &mut Corn::default() as &mut dyn Strategy,
            &mut Bcrp::default(),
        ] {
            let res = run_backtest(&p, EnvConfig::default(), 40, 100, strat);
            for w in &res.weights {
                assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                assert!(w.iter().all(|&x| x >= -1e-9));
            }
        }
    }

    #[test]
    fn correlation_helper_is_sane() {
        let a = [1.0, 2.0, 3.0];
        let up = [2.0, 4.0, 6.0];
        let down = [3.0, 2.0, 1.0];
        assert!((Corn::correlation(&a, &up) - 1.0).abs() < 1e-12);
        assert!((Corn::correlation(&a, &down) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(Corn::correlation(&a, &flat), 0.0);
    }
}
