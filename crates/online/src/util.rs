//! Shared numerics for online portfolio selection: exact Euclidean simplex
//! projection and small vector helpers.

/// Projects `v` onto the probability simplex in Euclidean norm using the
/// sort-based algorithm of Duchi et al. (2008).
pub fn simplex_projection(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    assert!(n > 0, "simplex_projection on empty vector");
    let mut u: Vec<f64> = v
        .iter()
        .map(|x| if x.is_finite() { *x } else { 0.0 })
        .collect();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let mut css = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let k = (i + 1) as f64;
        let t = (css - 1.0) / k;
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    if rho == 0 {
        return vec![1.0 / n as f64; n];
    }
    v.iter()
        .map(|&x| {
            let x = if x.is_finite() { x } else { 0.0 };
            (x - theta).max(0.0)
        })
        .collect()
}

/// Mean of a slice (0 for empty).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm.
pub fn sq_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// L1-median of a set of price vectors via Weiszfeld iterations — the
/// robust location estimator RMR builds on.
pub fn l1_median(points: &[Vec<f64>], iters: usize) -> Vec<f64> {
    assert!(!points.is_empty(), "l1_median of no points");
    let dim = points[0].len();
    // Start from the coordinate-wise mean.
    let mut mu: Vec<f64> = (0..dim)
        .map(|d| mean(&points.iter().map(|p| p[d]).collect::<Vec<_>>()))
        .collect();
    for _ in 0..iters {
        let mut num = vec![0.0f64; dim];
        let mut den = 0.0f64;
        for p in points {
            let dist = p
                .iter()
                .zip(&mu)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if dist < 1e-12 {
                // Point coincides with current estimate — done.
                return mu;
            }
            let w = 1.0 / dist;
            for d in 0..dim {
                num[d] += w * p[d];
            }
            den += w;
        }
        for d in 0..dim {
            mu[d] = num[d] / den;
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_simplex(w: &[f64]) -> bool {
        w.iter().all(|&x| x >= -1e-12) && (w.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    #[test]
    fn projection_of_simplex_point_is_identity() {
        let v = [0.2, 0.3, 0.5];
        let p = simplex_projection(&v);
        for (a, b) in p.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_yields_simplex() {
        let cases: [&[f64]; 4] = [
            &[1.0, 2.0, 3.0],
            &[-5.0, 0.1, 0.2],
            &[0.0, 0.0],
            &[10.0, -10.0, 0.5, 0.5],
        ];
        for v in cases {
            let p = simplex_projection(v);
            assert!(is_simplex(&p), "not simplex: {p:?} from {v:?}");
        }
    }

    #[test]
    fn projection_handles_nan() {
        let p = simplex_projection(&[f64::NAN, 1.0, 1.0]);
        assert!(is_simplex(&p));
    }

    #[test]
    fn projection_preserves_order() {
        let p = simplex_projection(&[3.0, 1.0, 2.0]);
        assert!(p[0] >= p[2] && p[2] >= p[1]);
    }

    #[test]
    fn l1_median_of_symmetric_points_is_center() {
        let pts = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let m = l1_median(&pts, 100);
        assert!(m[0].abs() < 1e-6 && m[1].abs() < 1e-6, "median {m:?}");
    }

    #[test]
    fn l1_median_resists_outlier() {
        // Mean is dragged by the outlier; the L1-median barely moves.
        let pts = vec![
            vec![1.0],
            vec![1.1],
            vec![0.9],
            vec![1.05],
            vec![100.0], // outlier
        ];
        let m = l1_median(&pts, 200);
        assert!(m[0] < 2.0, "median {m:?} should ignore the outlier");
    }
}
