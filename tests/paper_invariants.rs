//! Integration tests for the paper's core claims and invariants that span
//! crates: the DWT horizon partition, Theorem 1 (the counterfactual
//! baseline leaves the expected policy gradient unchanged), and the data
//! flow from panel to decomposed policy inputs.

use cross_insight_trader::core::{horizon_windows, raw_window};
use cross_insight_trader::market::SynthConfig;
use cross_insight_trader::nn::{Activation, Ctx, GaussianHead, Mlp, ParamStore};
use cross_insight_trader::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn horizon_windows_partition_raw_window_on_real_panel() {
    let p = SynthConfig {
        num_assets: 5,
        num_days: 200,
        test_start: 160,
        ..Default::default()
    }
    .generate();
    for n in [2usize, 3, 5] {
        let raw = raw_window(&p, 150, 32);
        let bands = horizon_windows(&p, 150, 32, n);
        for i in 0..5 {
            for f in 0..4 {
                for s in 0..32 {
                    let sum: f32 = bands.iter().map(|b| b.at3(i, f, s)).sum();
                    assert!((sum - raw.at3(i, f, s)).abs() < 1e-4, "n={n}");
                }
            }
        }
    }
}

/// Theorem 1: subtracting an action-independent-enough baseline (here the
/// counterfactual baseline depends on the *mean*, not the sampled action)
/// leaves the expected score-function gradient unchanged. We verify the
/// first component of the expected gradient empirically with a Monte-Carlo
/// estimate over many sampled actions.
#[test]
fn counterfactual_baseline_preserves_expected_gradient() {
    let dim = 3;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(17);
    let policy = Mlp::new(&mut store, &mut rng, "pi", &[2, 8, dim], Activation::Tanh);
    let head = GaussianHead::new(&mut store, "pi", dim, -0.5);
    let state = [0.3f32, -0.7];

    // A fixed, arbitrary "critic": Q(u) depends on the sampled action; the
    // baseline B is a constant w.r.t. the sample (computed from μ).
    let q_of = |u: &Tensor| -> f64 {
        u.data()
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
            .sum::<f64>()
    };
    let baseline = 1.2345f64; // any sample-independent value

    let mean_grad = |use_baseline: bool, samples: usize, seed: u64| -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc: Option<Tensor> = None;
        for _ in 0..samples {
            let mut ctx = Ctx::new(&store);
            let x = ctx.input(Tensor::vector(&state));
            let mv = policy.forward_vec(&mut ctx, x);
            let mean = ctx.g.value(mv).clone();
            let s = head.sample(&store, &mean, &mut rng);
            let weight = if use_baseline {
                q_of(&s.latent) - baseline
            } else {
                q_of(&s.latent)
            };
            let lp = head.log_prob(&mut ctx, mv, &s.latent);
            let loss = ctx.g.scale(lp, weight as f32);
            let grads = ctx.backward(loss);
            // Collect the gradient on the first policy weight tensor.
            let (_, g0) = grads
                .into_iter()
                .find(|(id, _)| store.name(*id) == "pi.l0.w")
                .expect("gradient on first layer");
            match &mut acc {
                Some(a) => a.add_assign(&g0),
                slot @ None => *slot = Some(g0),
            }
        }
        acc.expect("samples > 0")
            .scale(1.0 / samples as f32)
            .data()
            .to_vec()
    };

    let with = mean_grad(true, 6000, 100);
    let without = mean_grad(false, 6000, 100);
    // Same RNG stream: per-sample gradients differ by baseline·∇logπ whose
    // expectation is 0; averages must agree within Monte-Carlo noise.
    let num: f32 = with
        .iter()
        .zip(&without)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let den: f32 = without.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    assert!(
        num / den < 0.25,
        "baseline changed the expected gradient: relative diff {}",
        num / den
    );
}

/// The baseline genuinely reduces variance (the practical payoff of the
/// counterfactual mechanism) when it correlates with Q.
#[test]
fn good_baseline_reduces_gradient_variance() {
    let dim = 2;
    let mut store = ParamStore::new();
    let head = GaussianHead::new(&mut store, "pi", dim, -0.5);
    let mean_id = store.add("mu", Tensor::vector(&[0.2, -0.1]));

    let q_of = |u: &Tensor| -> f64 { 5.0 + u.data()[0] as f64 }; // large constant + signal
    let grad_samples = |use_baseline: bool| -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut firsts = Vec::new();
        for _ in 0..2000 {
            let mut ctx = Ctx::new(&store);
            let mv = ctx.param(mean_id);
            let mean = ctx.g.value(mv).clone();
            let s = head.sample(&store, &mean, &mut rng);
            let weight = if use_baseline {
                q_of(&s.latent) - 5.0
            } else {
                q_of(&s.latent)
            };
            let lp = head.log_prob(&mut ctx, mv, &s.latent);
            let loss = ctx.g.scale(lp, weight as f32);
            let grads = ctx.backward(loss);
            let g = grads
                .into_iter()
                .find(|(id, _)| *id == mean_id)
                .expect("mean grad")
                .1;
            firsts.push(g.data()[0]);
        }
        firsts
    };

    let var = |v: &[f32]| {
        let m = v.iter().sum::<f32>() / v.len() as f32;
        v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32
    };
    let v_with = var(&grad_samples(true));
    let v_without = var(&grad_samples(false));
    assert!(
        v_with < v_without * 0.5,
        "baseline should cut gradient variance: {v_with} vs {v_without}"
    );
}
