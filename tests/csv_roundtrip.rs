//! Cross-crate data-path test: a synthetic panel survives a CSV round-trip
//! and produces identical backtests, proving real CSV data can be dropped
//! in for the synthetic generator.

use cross_insight_trader::market::{
    panel_from_csv, panel_to_csv, run_test_period, series_to_csv, EnvConfig, SynthConfig,
    UniformStrategy,
};
use cross_insight_trader::online::Olmar;

#[test]
fn csv_roundtrip_preserves_backtests() {
    let p = SynthConfig {
        num_assets: 4,
        num_days: 150,
        test_start: 110,
        ..Default::default()
    }
    .generate();
    let csv = panel_to_csv(&p);
    let back = panel_from_csv("roundtrip", &csv, 110).expect("parse");
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };

    let a = run_test_period(&p, env, &mut UniformStrategy);
    let b = run_test_period(&back, env, &mut UniformStrategy);
    for (x, y) in a.wealth.iter().zip(&b.wealth) {
        assert!((x - y).abs() < 1e-6);
    }

    // Stateful strategies agree too.
    let a = run_test_period(&p, env, &mut Olmar::default());
    let b = run_test_period(&back, env, &mut Olmar::default());
    for (x, y) in a.wealth.iter().zip(&b.wealth) {
        assert!((x - y).abs() < 1e-4);
    }
}

#[test]
fn series_csv_is_parseable_numbers() {
    let csv = series_to_csv(&[
        ("alpha".to_string(), vec![1.0, 1.5, 2.25]),
        ("beta".to_string(), vec![1.0, 0.5, 0.25]),
    ]);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("day,alpha,beta"));
    for (i, line) in lines.enumerate() {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].parse::<usize>().expect("day"), i);
        for c in &cols[1..] {
            let _: f64 = c.parse().expect("numeric cell");
        }
    }
}
