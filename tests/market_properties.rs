//! Property-based invariants spanning the market substrate: backtester
//! accounting, metric identities, and environment behaviour under random
//! market and strategy configurations.

use cross_insight_trader::market::{
    metrics, project_to_simplex, risk, run_backtest, AssetPanel, DecisionContext, EnvConfig,
    Strategy, SynthConfig,
};
use proptest::prelude::*;

prop_compose! {
    fn arb_panel()(seed in 0u64..5000, m in 2usize..6, days in 80usize..160) -> AssetPanel {
        SynthConfig {
            num_assets: m,
            num_days: days,
            test_start: days - 30,
            seed,
            ..SynthConfig::default()
        }
        .generate()
    }
}

/// A strategy whose weights are driven by a deterministic pseudo-random
/// stream — exercises the harness with arbitrary simplex points.
struct RandomishStrategy {
    state: u64,
}

impl Strategy for RandomishStrategy {
    fn name(&self) -> String {
        "Randomish".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        (0..m)
            .map(|i| {
                self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(i as u64 + 1);
                ((self.state >> 33) % 1000) as f64 / 1000.0
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn backtest_accounting_always_consistent(panel in arb_panel(), stream in 0u64..1000) {
        let cfg = EnvConfig { window: 16, transaction_cost: 1e-3 };
        let start = 30;
        let end = panel.num_days();
        let res = run_backtest(&panel, cfg, start, end, &mut RandomishStrategy { state: stream });
        // Wealth strictly positive and consistent with daily returns.
        prop_assert!(res.wealth.iter().all(|w| *w > 0.0 && w.is_finite()));
        let mut w = 1.0;
        for (i, r) in res.daily_returns.iter().enumerate() {
            w *= 1.0 + r;
            prop_assert!((w - res.wealth[i + 1]).abs() < 1e-9);
        }
        // Weights always on the simplex.
        for ws in &res.weights {
            prop_assert!((ws.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(ws.iter().all(|&x| x >= -1e-12));
        }
        // Metric identities.
        prop_assert!(res.metrics.mdd >= 0.0 && res.metrics.mdd <= 1.0);
        prop_assert!((res.metrics.ar - (res.wealth.last().unwrap() - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn costs_never_help(panel in arb_panel(), stream in 0u64..1000) {
        let free = EnvConfig { window: 16, transaction_cost: 0.0 };
        let costly = EnvConfig { window: 16, transaction_cost: 5e-3 };
        let start = 30;
        let end = panel.num_days();
        let a = run_backtest(&panel, free, start, end, &mut RandomishStrategy { state: stream });
        let b = run_backtest(&panel, costly, start, end, &mut RandomishStrategy { state: stream });
        prop_assert!(
            *b.wealth.last().unwrap() <= a.wealth.last().unwrap() + 1e-12,
            "transaction costs must never increase final wealth"
        );
    }

    #[test]
    fn var_never_exceeds_es(rets in proptest::collection::vec(-0.2f64..0.2, 10..200)) {
        let var = risk::value_at_risk(&rets, 0.95);
        let es = risk::expected_shortfall(&rets, 0.95);
        prop_assert!(es + 1e-12 >= var, "ES {es} must dominate VaR {var}");
        prop_assert!(var >= 0.0 && es >= 0.0);
    }

    #[test]
    fn sharpe_is_scale_invariant(rets in proptest::collection::vec(-0.05f64..0.05, 10..100), c in 0.1f64..10.0) {
        let base = metrics::sharpe_ratio(&rets);
        let scaled: Vec<f64> = rets.iter().map(|r| c * r).collect();
        let s = metrics::sharpe_ratio(&scaled);
        prop_assert!((base - s).abs() < 1e-6, "Sharpe must be scale-invariant: {base} vs {s}");
    }

    #[test]
    fn simplex_projection_idempotent(v in proptest::collection::vec(-5.0f64..5.0, 1..12)) {
        let once = project_to_simplex(&v);
        let twice = project_to_simplex(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn drawdown_curve_bounded_and_zero_at_peaks(panel in arb_panel()) {
        let curve = panel.index_curve();
        let dd = risk::drawdown_curve(&curve);
        prop_assert_eq!(dd.len(), curve.len());
        prop_assert!(dd.iter().all(|d| (0.0..=1.0).contains(d)));
        // The global max of the curve must have zero drawdown.
        let (argmax, _) = curve
            .iter()
            .enumerate()
            .fold((0, f64::MIN), |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) });
        prop_assert!(dd[argmax] < 1e-12);
    }
}
