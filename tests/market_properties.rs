//! Property-style invariants spanning the market substrate: backtester
//! accounting, metric identities, and environment behaviour under seeded
//! random market and strategy configurations (deterministic loops instead
//! of proptest, which is unavailable in the offline build environment).

use cross_insight_trader::market::{
    metrics, project_to_simplex, risk, run_backtest, AssetPanel, DecisionContext, EnvConfig,
    Strategy, SynthConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_panel(rng: &mut StdRng) -> AssetPanel {
    let m = rng.random_range(2usize..6);
    let days = rng.random_range(80usize..160);
    SynthConfig {
        num_assets: m,
        num_days: days,
        test_start: days - 30,
        seed: rng.random_range(0u64..5000),
        ..SynthConfig::default()
    }
    .generate()
}

/// A strategy whose weights are driven by a deterministic pseudo-random
/// stream — exercises the harness with arbitrary simplex points.
struct RandomishStrategy {
    state: u64,
}

impl Strategy for RandomishStrategy {
    fn name(&self) -> String {
        "Randomish".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.panel.num_assets();
        (0..m)
            .map(|i| {
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 + 1);
                ((self.state >> 33) % 1000) as f64 / 1000.0
            })
            .collect()
    }
}

#[test]
fn backtest_accounting_always_consistent() {
    let mut rng = StdRng::seed_from_u64(41);
    for case in 0..8 {
        let panel = arb_panel(&mut rng);
        let stream = rng.random_range(0u64..1000);
        let cfg = EnvConfig {
            window: 16,
            transaction_cost: 1e-3,
        };
        let start = 30;
        let end = panel.num_days();
        let res = run_backtest(
            &panel,
            cfg,
            start,
            end,
            &mut RandomishStrategy { state: stream },
        );
        // Wealth strictly positive and consistent with daily returns.
        assert!(
            res.wealth.iter().all(|w| *w > 0.0 && w.is_finite()),
            "case {case}"
        );
        let mut w = 1.0;
        for (i, r) in res.daily_returns.iter().enumerate() {
            w *= 1.0 + r;
            assert!((w - res.wealth[i + 1]).abs() < 1e-9, "case {case}");
        }
        // Weights always on the simplex.
        for ws in &res.weights {
            assert!((ws.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
            assert!(ws.iter().all(|&x| x >= -1e-12), "case {case}");
        }
        // Metric identities.
        assert!(
            res.metrics.mdd >= 0.0 && res.metrics.mdd <= 1.0,
            "case {case}"
        );
        assert!(
            (res.metrics.ar - (res.wealth.last().unwrap() - 1.0)).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn costs_never_help() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..8 {
        let panel = arb_panel(&mut rng);
        let stream = rng.random_range(0u64..1000);
        let free = EnvConfig {
            window: 16,
            transaction_cost: 0.0,
        };
        let costly = EnvConfig {
            window: 16,
            transaction_cost: 5e-3,
        };
        let start = 30;
        let end = panel.num_days();
        let a = run_backtest(
            &panel,
            free,
            start,
            end,
            &mut RandomishStrategy { state: stream },
        );
        let b = run_backtest(
            &panel,
            costly,
            start,
            end,
            &mut RandomishStrategy { state: stream },
        );
        assert!(
            *b.wealth.last().unwrap() <= a.wealth.last().unwrap() + 1e-12,
            "transaction costs must never increase final wealth"
        );
    }
}

#[test]
fn var_never_exceeds_es() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..16 {
        let n = rng.random_range(10usize..200);
        let rets: Vec<f64> = (0..n).map(|_| rng.random_range(-0.2..0.2)).collect();
        let var = risk::value_at_risk(&rets, 0.95);
        let es = risk::expected_shortfall(&rets, 0.95);
        assert!(es + 1e-12 >= var, "ES {es} must dominate VaR {var}");
        assert!(var >= 0.0 && es >= 0.0);
    }
}

#[test]
fn sharpe_is_scale_invariant() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..16 {
        let n = rng.random_range(10usize..100);
        let rets: Vec<f64> = (0..n).map(|_| rng.random_range(-0.05..0.05)).collect();
        let c = rng.random_range(0.1..10.0);
        let base = metrics::sharpe_ratio(&rets);
        let scaled: Vec<f64> = rets.iter().map(|r| c * r).collect();
        let s = metrics::sharpe_ratio(&scaled);
        assert!(
            (base - s).abs() < 1e-6,
            "Sharpe must be scale-invariant: {base} vs {s}"
        );
    }
}

#[test]
fn simplex_projection_idempotent() {
    let mut rng = StdRng::seed_from_u64(45);
    for _ in 0..16 {
        let n = rng.random_range(1usize..12);
        let v: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..5.0)).collect();
        let once = project_to_simplex(&v);
        let twice = project_to_simplex(&once);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn drawdown_curve_bounded_and_zero_at_peaks() {
    let mut rng = StdRng::seed_from_u64(46);
    for _ in 0..8 {
        let panel = arb_panel(&mut rng);
        let curve = panel.index_curve();
        let dd = risk::drawdown_curve(&curve);
        assert_eq!(dd.len(), curve.len());
        assert!(dd.iter().all(|d| (0.0..=1.0).contains(d)));
        // The global max of the curve must have zero drawdown.
        let (argmax, _) =
            curve.iter().enumerate().fold(
                (0, f64::MIN),
                |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) },
            );
        assert!(dd[argmax] < 1e-12);
    }
}
