//! End-to-end integration tests: every model in the workspace trains on a
//! tiny synthetic market and produces a valid backtest through the shared
//! harness.

use cross_insight_trader::core::{CitConfig, CrossInsightTrader};
use cross_insight_trader::market::{
    run_test_period, EnvConfig, MarketPreset, Strategy, SynthConfig,
};
use cross_insight_trader::online::all_strategies;
use cross_insight_trader::rl::{
    A2c, Ddpg, DdpgConfig, DeepTrader, Eiie, Ppo, PpoConfig, RlConfig, Sarl,
};

fn tiny_panel() -> cross_insight_trader::market::AssetPanel {
    SynthConfig {
        num_assets: 4,
        num_days: 320,
        test_start: 260,
        ..Default::default()
    }
    .generate()
}

fn assert_valid_backtest(res: &cross_insight_trader::market::BacktestResult, days: usize) {
    assert_eq!(res.wealth.len(), days, "{}", res.name);
    assert!(
        res.wealth.iter().all(|w| w.is_finite() && *w > 0.0),
        "{}",
        res.name
    );
    assert!(
        res.metrics.mdd >= 0.0 && res.metrics.mdd <= 1.0,
        "{}",
        res.name
    );
    for w in &res.weights {
        let sum: f64 = w.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "{}: weights must stay on the simplex",
            res.name
        );
        assert!(w.iter().all(|&x| x >= -1e-9), "{}", res.name);
    }
}

#[test]
fn all_online_strategies_backtest_cleanly() {
    let panel = tiny_panel();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let days = panel.num_days() - panel.test_start();
    for mut s in all_strategies() {
        let res = run_test_period(&panel, env, s.as_mut());
        assert_valid_backtest(&res, days);
    }
}

#[test]
fn all_rl_agents_train_and_backtest() {
    let panel = tiny_panel();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let days = panel.num_days() - panel.test_start();
    let rl = RlConfig {
        window: 16,
        total_steps: 150,
        ..RlConfig::smoke(3)
    };

    let mut results: Vec<cross_insight_trader::market::BacktestResult> = Vec::new();

    let mut a2c = A2c::new(&panel, rl);
    a2c.train(&panel);
    results.push(run_test_period(&panel, env, &mut a2c));

    let mut ppo = Ppo::new(
        &panel,
        PpoConfig {
            base: rl,
            ..Default::default()
        },
    );
    ppo.train(&panel);
    results.push(run_test_period(&panel, env, &mut ppo));

    let mut ddpg = Ddpg::new(
        &panel,
        DdpgConfig {
            base: rl,
            warmup: 32,
            ..Default::default()
        },
    );
    ddpg.train(&panel);
    results.push(run_test_period(&panel, env, &mut ddpg));

    let mut eiie = Eiie::new(&panel, rl);
    eiie.train(&panel);
    results.push(run_test_period(&panel, env, &mut eiie));

    let mut sarl = Sarl::new(&panel, rl);
    sarl.train(&panel);
    results.push(run_test_period(&panel, env, &mut sarl));

    let mut dt = DeepTrader::new(&panel, rl);
    dt.train(&panel);
    results.push(run_test_period(&panel, env, &mut dt));

    for res in &results {
        assert_valid_backtest(res, days);
    }
    let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["A2C", "PPO", "DDPG", "EIIE", "SARL", "DeepTrader"]);
}

#[test]
fn cit_trains_and_backtests_on_preset_market() {
    let panel = MarketPreset::China.scaled(10, 24).generate();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let mut cfg = CitConfig::smoke(5);
    cfg.window = 16;
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    let report = trader.train(&panel);
    assert!(report.steps >= cfg.total_steps);
    let res = run_test_period(&panel, env, &mut trader);
    assert_valid_backtest(&res, panel.num_days() - panel.test_start());
}

#[test]
fn cit_backtest_is_deterministic_after_training() {
    let panel = tiny_panel();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let mut cfg = CitConfig::smoke(6);
    cfg.window = 16;
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    trader.train(&panel);
    let a = run_test_period(&panel, env, &mut trader);
    let b = run_test_period(&panel, env, &mut trader);
    assert_eq!(
        a.wealth, b.wealth,
        "deterministic evaluation must be repeatable"
    );
}

#[test]
fn identical_seeds_give_identical_training() {
    let panel = tiny_panel();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let run = |seed: u64| {
        let mut cfg = CitConfig::smoke(seed);
        cfg.window = 16;
        let mut trader = CrossInsightTrader::new(&panel, cfg);
        trader.train(&panel);
        run_test_period(&panel, env, &mut trader).wealth
    };
    assert_eq!(run(9), run(9));
    assert_ne!(
        run(9),
        run(10),
        "different seeds should explore differently"
    );
}

#[test]
fn strategy_trait_objects_compose() {
    // The whole zoo can be driven through `dyn Strategy`.
    let panel = tiny_panel();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let rl = RlConfig {
        window: 16,
        total_steps: 60,
        ..RlConfig::smoke(8)
    };
    let mut zoo: Vec<Box<dyn Strategy>> = all_strategies();
    zoo.push(Box::new(Eiie::new(&panel, rl)));
    let days = panel.num_days() - panel.test_start();
    for s in zoo.iter_mut() {
        let res = run_test_period(&panel, env, s.as_mut());
        assert_valid_backtest(&res, days);
    }
}
